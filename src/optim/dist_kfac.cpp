#include "src/optim/dist_kfac.hpp"

#include "src/codec/ckpt.hpp"
#include "src/tensor/matrix_ops.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <numeric>
#include <stdexcept>

namespace compso::optim {
namespace {

bool all_finite(std::span<const float> values) noexcept {
  for (float v : values) {
    if (!std::isfinite(v)) return false;
  }
  return true;
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int b = 0; b < 8; ++b) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * b)));
  }
}

void put_f32(std::vector<std::uint8_t>& out, float v) {
  std::uint32_t bits;
  std::memcpy(&bits, &v, 4);
  for (int b = 0; b < 4; ++b) {
    out.push_back(static_cast<std::uint8_t>(bits >> (8 * b)));
  }
}

void put_tensor(std::vector<std::uint8_t>& out, const Tensor& t) {
  put_u64(out, t.size());
  const std::size_t at = out.size();
  out.resize(at + t.size() * sizeof(float));
  if (!t.empty()) std::memcpy(out.data() + at, t.data(), t.size() * 4);
}

/// Reads `expected` floats into a tensor of the given shape.
Tensor get_tensor(codec::wire::Reader& r, std::vector<std::size_t> shape) {
  const auto n = r.bounded_u64(codec::wire::kMaxElementCount, "kfac tensor");
  Tensor t(std::move(shape));
  if (n != t.size()) {
    throw PayloadError("DistKfac: checkpoint tensor size mismatch");
  }
  for (std::size_t i = 0; i < t.size(); ++i) t[i] = r.f32();
  return t;
}

}  // namespace

DistKfac::DistKfac(DistKfacConfig config, comm::Communicator& comm,
                   std::vector<nn::Model*> replicas)
    : cfg_(config), comm_(comm), replicas_(std::move(replicas)) {
  if (replicas_.size() != comm_.world_size()) {
    throw std::invalid_argument("DistKfac: one replica per rank required");
  }
  layer_indices_ = replicas_[0]->trainable_layers();
  for (std::size_t li : layer_indices_) {
    auto& l = replicas_[0]->layer(li);
    const std::size_t out = l.weight()->rows();
    const std::size_t in_aug = l.weight()->cols() + 1;
    states_.push_back(std::make_unique<KfacLayerState>(in_aug, out));
    momentum_.emplace_back(
        Tensor({out, in_aug}));
  }
}

std::vector<std::size_t> DistKfac::compute_owners(
    const std::vector<std::size_t>& ranks) const {
  const std::size_t slots = layer_indices_.size();
  std::vector<std::size_t> owners(slots, ranks.empty() ? 0 : ranks[0]);
  if (ranks.empty() || slots == 0) return owners;
  if (cfg_.assignment == ShardAssignment::kRoundRobin) {
    for (std::size_t s = 0; s < slots; ++s) {
      owners[s] = ranks[s % ranks.size()];
    }
    return owners;
  }
  // Greedy LPT on the slot's eigh cost: both factors are eigendecomposed,
  // so cost(s) = d_a^3 + d_g^3. Heaviest slot first (ties: lower slot),
  // each to the least-loaded rank (ties: lower rank) — a pure function of
  // the rank list and the model shape, so every rank computes the same
  // map and eviction-triggered reassignment is deterministic.
  std::vector<double> cost(slots, 0.0);
  for (std::size_t s = 0; s < slots; ++s) {
    const auto da = static_cast<double>(states_[s]->factor_a().rows());
    const auto dg = static_cast<double>(states_[s]->factor_g().rows());
    cost[s] = da * da * da + dg * dg * dg;
  }
  std::vector<std::size_t> order(slots);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&cost](std::size_t a, std::size_t b) {
    if (cost[a] != cost[b]) return cost[a] > cost[b];
    return a < b;
  });
  std::vector<double> load(ranks.size(), 0.0);
  for (std::size_t s : order) {
    std::size_t best = 0;
    for (std::size_t k = 1; k < ranks.size(); ++k) {
      if (load[k] < load[best]) best = k;
    }
    owners[s] = ranks[best];
    load[best] += cost[s];
  }
  return owners;
}

void DistKfac::refresh_assignment() const {
  const std::size_t world = comm_.world_size();
  std::vector<std::uint8_t> mask(world, 0);
  for (std::size_t r = 0; r < world; ++r) {
    mask[r] = comm_.is_participating(r) ? 1 : 0;
  }
  if (mask == shard_mask_ && shard_owner_.size() == layer_indices_.size()) {
    return;
  }
  shard_owner_ = compute_owners(comm_.participant_ranks());
  shard_mask_ = std::move(mask);
}

std::size_t DistKfac::owner_of(std::size_t i) const {
  refresh_assignment();
  if (i < shard_owner_.size()) return shard_owner_[i];
  // Out-of-range slots keep the legacy round-robin answer.
  return comm_.participant_ranks()[i % comm_.participant_count()];
}

const std::vector<std::size_t>& DistKfac::shard_owners() const {
  refresh_assignment();
  return shard_owner_;
}

DistKfac::ShardStats DistKfac::shard_stats() const {
  refresh_assignment();
  ShardStats st;
  st.owners = shard_owner_;
  const std::size_t world = comm_.world_size();
  st.factor_bytes.assign(world, 0);
  st.eigh_flops.assign(world, 0.0);
  for (std::size_t s = 0; s < layer_indices_.size(); ++s) {
    const std::size_t da = states_[s]->factor_a().rows();
    const std::size_t dg = states_[s]->factor_g().rows();
    // Resident shard state: A + G + both eigenvector matrices + both
    // eigenvalue vectors, f32.
    const std::uint64_t bytes =
        (2 * (da * da + dg * dg) + da + dg) * sizeof(float);
    const double dad = static_cast<double>(da);
    const double dgd = static_cast<double>(dg);
    const double flops = 25.0 * (dad * dad * dad + dgd * dgd * dgd);
    if (cfg_.layout == PrecondLayout::kSharded) {
      st.factor_bytes[st.owners[s]] += bytes;
      st.eigh_flops[st.owners[s]] += flops;
    } else {
      for (std::size_t r = 0; r < world; ++r) {
        if (!comm_.is_participating(r)) continue;
        st.factor_bytes[r] += bytes;
        st.eigh_flops[r] += flops;
      }
    }
  }
  for (std::size_t r = 0; r < world; ++r) {
    if (!comm_.is_participating(r)) continue;
    st.peak_factor_bytes = std::max(st.peak_factor_bytes, st.factor_bytes[r]);
    st.peak_eigh_flops = std::max(st.peak_eigh_flops, st.eigh_flops[r]);
  }
  return st;
}

void DistKfac::exchange_covariances(std::vector<Tensor>& local,
                                    const std::vector<compress::Bytes>* send,
                                    std::size_t owner) {
  const std::size_t world = comm_.world_size();
  const std::size_t active = comm_.participant_count();
  const std::size_t lead = comm_.first_participant();
  if (send == nullptr) {
    std::vector<std::span<float>> views;
    views.reserve(world);
    for (auto& t : local) views.push_back(t.span());
    if (cfg_.layout == PrecondLayout::kSharded) {
      // Reduce-to-owner (DP-KFAC): only the owner needs the averaged
      // covariance — it alone blends and eigendecomposes this slot's
      // factors. The canonical summation order makes the owner's value
      // bit-identical to what the allreduce would have left at the lead.
      comm_.reduce_sum(views, owner);
      local[owner] *= 1.0F / static_cast<float>(active);
      if (owner != 0) local[0] = local[owner];
      return;
    }
    comm_.allreduce_sum(views);
    local[lead] *= 1.0F / static_cast<float>(active);
    if (lead != 0) local[0] = local[lead];
    return;
  }
  // Compressed path (§7): the per-rank payloads arrive pre-compressed
  // (the engine compressed them while earlier layers were exchanging);
  // a retry re-sends the same bytes.
  const std::size_t n = local[lead].size();
  const std::size_t attempts =
      policy_.enabled ? policy_.max_decode_retries + 1 : 1;
  for (std::size_t attempt = 0; attempt < attempts; ++attempt) {
    std::vector<std::vector<std::uint8_t>> recv;
    comm_.allgatherv(*send, recv);
    try {
      // Decode from the *received* stream (sliced by the known send
      // sizes), so transport corruption reaches the validation layer.
      // Per-rank decodes run as one engine batch; the average is
      // accumulated on this thread in rank order (deterministic float
      // sum).
      const compress::ByteView gathered(recv[lead]);
      decode_bufs_.resize(world);
      std::vector<std::function<void()>> jobs;
      jobs.reserve(active);
      std::size_t off = 0;
      for (std::size_t r = 0; r < world; ++r) {
        if (!comm_.is_participating(r)) continue;
        if ((*send)[r].size() > gathered.size() - off) {
          throw PayloadError("DistKfac: gathered stream truncated");
        }
        const compress::ByteView slice =
            gathered.subspan(off, (*send)[r].size());
        off += (*send)[r].size();
        jobs.push_back([this, slice, r, n] {
          auto& buf = decode_bufs_[r];
          factor_compressor_->decompress_into(slice, buf);
          if (buf.size() != n) {
            throw PayloadError("DistKfac: factor decompress size mismatch");
          }
        });
      }
      engine().run_batch(std::move(jobs));
      Tensor avg(local[lead]);
      avg.fill(0.0F);
      for (std::size_t r = 0; r < world; ++r) {
        if (!comm_.is_participating(r)) continue;
        const auto& rec = decode_bufs_[r];
        for (std::size_t i = 0; i < n; ++i) {
          avg[i] += rec[i] / static_cast<float>(active);
        }
      }
      local[0] = std::move(avg);
      return;
    } catch (const PayloadError&) {
      if (!policy_.enabled) throw;
      if (attempt + 1 < attempts) {
        ++comm_.recovery().decode_retries;
        comm_.obs().count("recovery.decode_retries");
        continue;
      }
      ++comm_.recovery().decode_failures;
      ++comm_.recovery().fallback_steps;
      comm_.obs().count("recovery.decode_failures");
      comm_.obs().count("recovery.fallback_steps");
      comm_.obs().instant(obs::kMainTrack, "kfac.factor_fallback", "recovery");
      // Fallback: plain allreduce of the raw covariances (untouched by
      // the compressed attempt).
      std::vector<std::span<float>> views;
      views.reserve(world);
      for (auto& t : local) views.push_back(t.span());
      comm_.allreduce_sum(views);
      local[lead] *= 1.0F / static_cast<float>(active);
      if (lead != 0) local[0] = local[lead];
      return;
    }
  }
}

std::vector<std::vector<std::uint8_t>> DistKfac::build_gather_payloads(
    const std::vector<Tensor>& preconditioned,
    const std::vector<std::vector<std::size_t>>& owned,
    const compress::GradientCompressor* compressor,
    std::uint64_t step_seed) {
  const std::size_t world = comm_.world_size();
  const std::size_t m = std::max<std::size_t>(cfg_.aggregation, 1);
  auto append_u64 = [](std::vector<std::uint8_t>& buf, std::uint64_t v) {
    for (int b = 0; b < 8; ++b) {
      buf.push_back(static_cast<std::uint8_t>(v >> (8 * b)));
    }
  };

  // Pass 1 (serial): carve the owned layers into aggregation groups and
  // concatenate each group's preconditioned gradients into its reusable
  // buffer.
  struct Group {
    std::size_t rank;
    std::size_t first;  ///< index into owned[rank]
    std::size_t count;
  };
  std::vector<Group> groups;
  for (std::size_t r = 0; r < world; ++r) {
    for (std::size_t i = 0; i < owned[r].size(); i += m) {
      groups.push_back({r, i, std::min(i + m, owned[r].size()) - i});
    }
  }
  if (group_concat_.size() < groups.size()) group_concat_.resize(groups.size());
  if (group_payloads_.size() < groups.size()) {
    group_payloads_.resize(groups.size());
  }
  for (std::size_t g = 0; g < groups.size(); ++g) {
    auto& concat = group_concat_[g];
    concat.clear();
    for (std::size_t j = 0; j < groups[g].count; ++j) {
      const auto& k =
          preconditioned[owned[groups[g].rank][groups[g].first + j]];
      concat.insert(concat.end(), k.span().begin(), k.span().end());
    }
  }

  // Pass 2: compress every group as one engine batch (parallel across
  // groups when a pool is attached). Stream ids are claimed serially
  // before the batch runs, so they depend only on group order.
  if (compressor != nullptr) {
    std::vector<std::function<void()>> jobs;
    jobs.reserve(groups.size());
    for (std::size_t g = 0; g < groups.size(); ++g) {
      const std::uint64_t tid = task_counter_++;
      jobs.push_back([this, compressor, step_seed, tid, g] {
        tensor::Rng task_rng =
            compress::CompressionEngine::task_rng(step_seed, tid);
        compressor->compress_into(group_concat_[g], task_rng,
                                  group_payloads_[g]);
      });
    }
    engine().run_batch(std::move(jobs));
  } else {
    for (std::size_t g = 0; g < groups.size(); ++g) {
      const auto& concat = group_concat_[g];
      auto& raw = group_payloads_[g];
      raw.resize(concat.size() * sizeof(float));
      if (!raw.empty()) std::memcpy(raw.data(), concat.data(), raw.size());
    }
  }

  // Pass 3 (serial): frame the payloads into the per-rank send buffers.
  std::vector<std::vector<std::uint8_t>> send(world);
  for (std::size_t g = 0; g < groups.size(); ++g) {
    const Group& grp = groups[g];
    const auto& payload = group_payloads_[g];
    auto& buf = send[grp.rank];
    append_u64(buf, grp.count);
    for (std::size_t j = 0; j < grp.count; ++j) {
      append_u64(buf, owned[grp.rank][grp.first + j]);
    }
    append_u64(buf, payload.size());
    buf.insert(buf.end(), payload.begin(), payload.end());
    comp_bytes_ += payload.size();
  }
  return send;
}

void DistKfac::decode_gathered(
    const std::vector<std::uint8_t>& buf, std::vector<Tensor>& preconditioned,
    const compress::GradientCompressor* compressor) {
  std::size_t pos = 0;
  auto read_u64 = [&](std::size_t at) {
    std::uint64_t v = 0;
    for (int b = 0; b < 8; ++b) {
      v |= static_cast<std::uint64_t>(buf[at + static_cast<std::size_t>(b)])
           << (8 * b);
    }
    return v;
  };
  // Pass 1 (serial): parse and validate every group's framing before any
  // payload is touched — hostile framing never reaches the decoder pool.
  struct Group {
    std::vector<std::size_t> sids;
    std::span<const std::uint8_t> payload;
    std::size_t elems = 0;
  };
  std::vector<Group> groups;
  std::vector<std::uint8_t> seen(preconditioned.size(), 0);
  while (pos + 8 <= buf.size()) {
    const std::uint64_t n = read_u64(pos);
    pos += 8;
    if (n > preconditioned.size() || pos + 8 * n + 8 > buf.size()) {
      throw PayloadError("DistKfac: corrupt allgather framing");
    }
    Group grp;
    grp.sids.resize(n);
    for (std::uint64_t j = 0; j < n; ++j) {
      grp.sids[j] = read_u64(pos);
      pos += 8;
      if (grp.sids[j] >= preconditioned.size() || seen[grp.sids[j]] != 0) {
        throw PayloadError("DistKfac: bad layer id in payload");
      }
      seen[grp.sids[j]] = 1;
      grp.elems += preconditioned[grp.sids[j]].size();
    }
    const std::uint64_t psize = read_u64(pos);
    pos += 8;
    if (psize > buf.size() || pos + psize > buf.size()) {
      throw PayloadError("DistKfac: corrupt allgather payload");
    }
    grp.payload = std::span<const std::uint8_t>(buf.data() + pos, psize);
    pos += psize;
    groups.push_back(std::move(grp));
  }
  if (pos != buf.size()) {
    throw PayloadError("DistKfac: trailing bytes in gathered stream");
  }
  // Pass 2: decompress every group as one engine batch. Any payload
  // damage throws PayloadError from the batch barrier.
  if (group_values_.size() < groups.size()) {
    group_values_.resize(groups.size());
  }
  if (compressor != nullptr) {
    std::vector<std::function<void()>> jobs;
    jobs.reserve(groups.size());
    for (std::size_t g = 0; g < groups.size(); ++g) {
      jobs.push_back([this, compressor, payload = groups[g].payload, g] {
        compressor->decompress_into(payload, group_values_[g]);
      });
    }
    engine().run_batch(std::move(jobs));
  } else {
    for (std::size_t g = 0; g < groups.size(); ++g) {
      const auto payload = groups[g].payload;
      if (payload.size() % sizeof(float) != 0) {
        throw PayloadError("DistKfac: raw payload not float-aligned");
      }
      auto& values = group_values_[g];
      values.resize(payload.size() / sizeof(float));
      if (!payload.empty()) {
        std::memcpy(values.data(), payload.data(), payload.size());
      }
    }
  }
  // Pass 3 (serial): size checks + scatter into the layer tensors.
  for (std::size_t g = 0; g < groups.size(); ++g) {
    const auto& values = group_values_[g];
    if (values.size() != groups[g].elems) {
      throw PayloadError("DistKfac: decompressed size mismatch");
    }
    std::size_t off = 0;
    for (std::size_t sid : groups[g].sids) {
      Tensor& k = preconditioned[sid];
      std::copy(values.begin() + static_cast<std::ptrdiff_t>(off),
                values.begin() + static_cast<std::ptrdiff_t>(off + k.size()),
                k.data());
      off += k.size();
    }
  }
  // A dropped allgatherv entry leaves a well-formed shorter stream; the
  // coverage check is what turns "my owner's group never arrived" into a
  // decode failure the retry policy can act on.
  for (std::size_t s = 0; s < seen.size(); ++s) {
    if (seen[s] == 0) {
      throw PayloadError("DistKfac: missing layer group in gathered stream");
    }
  }
}

void DistKfac::step(std::size_t iteration, double lr,
                    const compress::GradientCompressor* compressor,
                    tensor::Rng& rng) {
  const std::size_t world = comm_.world_size();
  const std::size_t active = comm_.participant_count();
  const std::size_t lead = comm_.first_participant();
  const std::size_t slots = layer_indices_.size();
  factor_orig_bytes_ = 0;
  factor_comp_bytes_ = 0;
  orig_bytes_ = 0;
  comp_bytes_ = 0;
  const obs::ObsHooks& hooks = comm_.obs();
  hooks.count("kfac.steps");
  auto& eng = engine();
  eng.wait_all();  // reap any tickets left by a previous failed step.
  task_counter_ = 0;
  // Exactly one main-stream draw per step when any compressor is
  // attached; every compression job derives its own Rng from this seed
  // and a build-ordered task id, so the main stream's draw count is
  // independent of faults, retries, degradation, and engine threading.
  const std::uint64_t step_seed =
      (compressor != nullptr || factor_compressor_ != nullptr) ? rng() : 0;
  const bool fcomp = factor_compressor_ != nullptr;
  const bool refresh =
      iteration % cfg_.eigen_refresh_every == 0 || !states_[0]->has_eigen();
  const compress::GradientCompressor* gather_comp =
      gather_degraded_ != 0 ? nullptr : compressor;

  // ------------------------------------------------------------------
  // Graph build (serial, optimizer thread): size the workspaces,
  // validate inputs, claim every compression task's Rng stream id —
  // factor streams in slot order (a then g, active ranks ascending),
  // then gather-group streams in group order, exactly the serial-phase
  // schedule — and wire the per-layer task graph (DESIGN.md §13).
  // Nothing below depends on execution timing, so the graph and every
  // stream id are pure functions of the step's inputs.
  // ------------------------------------------------------------------
  graph_.clear();
  if (cov_a_.size() < slots) {
    cov_a_.resize(slots);
    cov_g_.resize(slots);
  }
  if (grad_work_.size() < slots) grad_work_.resize(slots);
  if (fcomp && factor_send_a_.size() < slots) {
    factor_send_a_.resize(slots);
    factor_send_g_.resize(slots);
  }
  preconditioned_.resize(slots);
  skip_.assign(slots, 0);
  owned_.resize(world);
  for (auto& v : owned_) v.clear();
  for (std::size_t s = 0; s < slots; ++s) owned_[owner_of(s)].push_back(s);
  if (refresh) hooks.count("kfac.eigh_refreshes");

  // Stream ids, claimed in the legacy order before any task is built.
  std::vector<std::uint64_t> tid_a(slots * world, 0);
  std::vector<std::uint64_t> tid_g(slots * world, 0);
  if (fcomp) {
    for (std::size_t s = 0; s < slots; ++s) {
      for (std::size_t r = 0; r < world; ++r) {
        if (comm_.is_participating(r)) tid_a[s * world + r] = task_counter_++;
      }
      for (std::size_t r = 0; r < world; ++r) {
        if (comm_.is_participating(r)) tid_g[s * world + r] = task_counter_++;
      }
    }
  }
  struct GroupPlan {
    std::size_t rank;
    std::size_t first;  ///< index into owned_[rank]
    std::size_t count;
    std::uint64_t tid;
  };
  std::vector<GroupPlan> groups;
  const std::size_t m = std::max<std::size_t>(cfg_.aggregation, 1);
  for (std::size_t r = 0; r < world; ++r) {
    for (std::size_t i = 0; i < owned_[r].size(); i += m) {
      groups.push_back(
          {r, i, std::min(i + m, owned_[r].size()) - i, 0});
    }
  }
  if (gather_comp != nullptr) {
    for (auto& grp : groups) grp.tid = task_counter_++;
  }
  if (group_concat_.size() < groups.size()) group_concat_.resize(groups.size());
  if (group_payloads_.size() < groups.size()) {
    group_payloads_.resize(groups.size());
  }

  // Priorities implement the backward-order wavefront: within the ready
  // set, later layers run first (their factors and gradients are ready
  // first in a real backward pass), comm tasks of ALL layers run before
  // any guard (so preconditioning stays in flight under the remaining
  // collectives), and the gather/update tail runs last.
  const auto prio_fx = [](std::size_t s) { return static_cast<int>(3 * s) + 2; };
  const auto prio_gar = [](std::size_t s) { return static_cast<int>(3 * s) + 1; };
  const auto prio_guard = [slots](std::size_t s) {
    return static_cast<int>(s) - static_cast<int>(slots);
  };
  constexpr int kPrioGather = -1000000;

  std::vector<StepGraph::TaskId> guard_id(slots, 0);
  std::vector<StepGraph::TaskId> gcomp_ids;
  gcomp_ids.reserve(groups.size());

  for (std::size_t s = 0; s < slots; ++s) {
    const std::size_t li = layer_indices_[s];
    auto& local_a = cov_a_[s];
    auto& local_g = cov_g_[s];
    local_a.resize(world);
    local_g.resize(world);
    const std::size_t shape_a = states_[s]->factor_a().rows();
    const std::size_t shape_g = states_[s]->factor_g().rows();
    if (fcomp) {
      factor_send_a_[s].resize(world);
      factor_send_g_[s].resize(world);
      for (std::size_t r = 0; r < world; ++r) {
        factor_send_a_[s][r].clear();
        factor_send_g_[s][r].clear();
      }
    }
    // Fused per-(slot, rank) covariance + factor-compression tasks. The
    // syrks of distinct (s, r) write disjoint tensors and each
    // compression reads only its own rank's covariance, so fusing keeps
    // the graph free of compute->compute edges — the main thread never
    // has to block just to submit a dependent.
    std::vector<StepGraph::TaskId> cov_ids;
    for (std::size_t r = 0; r < world; ++r) {
      if (!comm_.is_participating(r)) {
        // allreduce_sum overwrites every view with the sum, so
        // non-participating slots must be re-zeroed every step — in
        // place: re-allocating a zero tensor per evicted rank per layer
        // per step was measurable churn (see the steady-state allocation
        // test).
        if (local_a[r].rank() != 2 || local_a[r].rows() != shape_a ||
            local_a[r].cols() != shape_a) {
          local_a[r] = Tensor({shape_a, shape_a});
        } else {
          local_a[r].fill(0.0F);
        }
        if (local_g[r].rank() != 2 || local_g[r].rows() != shape_g ||
            local_g[r].cols() != shape_g) {
          local_g[r] = Tensor({shape_g, shape_g});
        } else {
          local_g[r].fill(0.0F);
        }
        continue;
      }
      auto& layer = replicas_[r]->layer(li);
      const Tensor* a = layer.kfac_input();
      const Tensor* g = layer.kfac_grad_output();
      if (a == nullptr || g == nullptr || a->empty() || g->empty()) {
        throw std::logic_error("DistKfac: run forward/backward first");
      }
      const std::uint64_t ta = tid_a[s * world + r];
      const std::uint64_t tg = tid_g[s * world + r];
      cov_ids.push_back(graph_.add_compute(
          (fcomp ? "cov_compress" : "cov") + std::to_string(s),
          static_cast<int>(s), [this, a, g, s, r, fcomp, step_seed, ta, tg] {
            const auto batch = static_cast<float>(a->rows());
            tensor::syrk_tn(*a, 1.0F / batch, 0.0F, cov_a_[s][r]);
            tensor::syrk_tn(*g, batch, 0.0F, cov_g_[s][r]);
            if (fcomp) {
              tensor::Rng rng_a =
                  compress::CompressionEngine::task_rng(step_seed, ta);
              factor_compressor_->compress_into(cov_a_[s][r].span(), rng_a,
                                                factor_send_a_[s][r]);
              tensor::Rng rng_g =
                  compress::CompressionEngine::task_rng(step_seed, tg);
              factor_compressor_->compress_into(cov_g_[s][r].span(), rng_g,
                                                factor_send_g_[s][r]);
            }
          }));
    }

    // Factor exchange + blend: the slot's collective(s), driven on the
    // main thread while other slots' covariances compress on the pool.
    // Under the sharded layout the slot's owner is the reduce root and
    // the rank whose buffer feeds the precondition — identical bits, but
    // the comm is a reduce and the memory/compute attribution is O(L/P).
    const std::size_t own =
        cfg_.layout == PrecondLayout::kSharded ? shard_owner_[s] : lead;
    const auto fx = graph_.add_main(
        "factor_exchange" + std::to_string(s), prio_fx(s),
        [this, s, fcomp, world, own] {
          if (fcomp) {
            for (std::size_t r = 0; r < world; ++r) {
              if (!comm_.is_participating(r)) continue;
              factor_orig_bytes_ +=
                  (cov_a_[s][r].size() + cov_g_[s][r].size()) * sizeof(float);
              factor_comp_bytes_ +=
                  factor_send_a_[s][r].size() + factor_send_g_[s][r].size();
            }
            exchange_covariances(cov_a_[s], &factor_send_a_[s], own);
            exchange_covariances(cov_g_[s], &factor_send_g_[s], own);
          } else {
            exchange_covariances(cov_a_[s], nullptr, own);
            exchange_covariances(cov_g_[s], nullptr, own);
          }
          // Blend into the shared running-average state. (All ranks hold
          // the same state after the exchange; the simulator stores it
          // once.)
          states_[s]->blend_factors(cov_a_[s][0], cov_g_[s][0],
                                    cfg_.stat_decay);
        },
        /*is_comm=*/true);
    for (const auto c : cov_ids) graph_.depends(fx, c);

    // Gradient allreduce (data-parallel average of the SGD gradients) —
    // reads only the layer's gradient buffers, so it has no deps and
    // overlaps earlier slots' compute.
    const auto gar = graph_.add_main(
        "grad_allreduce" + std::to_string(s), prio_gar(s),
        [this, s, li, world, active, own] {
          auto& gw = grad_work_[s];
          gw.resize(world);
          const auto& shape = momentum_[s].shape();
          for (std::size_t r = 0; r < world; ++r) {
            if (comm_.is_participating(r)) {
              combined_gradient_into(replicas_[r]->layer(li), gw[r]);
            } else if (gw[r].rank() != 2 || gw[r].shape() != shape) {
              gw[r] = Tensor(shape);
            } else {
              gw[r].fill(0.0F);
            }
          }
          std::vector<std::span<float>> views;
          views.reserve(world);
          for (auto& t : gw) views.push_back(t.span());
          comm_.allreduce_sum(views);
          // The slot owner's copy becomes the average it preconditions
          // from (the allreduce replicated the sum, so any participant's
          // copy is the same bits; `own` == lead under kKaisa).
          gw[own] *= 1.0F / static_cast<float>(active);
        },
        /*is_comm=*/true);

    // Eigendecomposition refresh (owner-partitioned, every
    // eigen_refresh_every steps) fused with preconditioning: both read
    // only this slot's state, so the pair overlaps other slots'
    // collectives — the §4.4 "eigh under comm" overlap.
    const auto ep = graph_.add_compute(
        (refresh ? "eigh_precond" : "precond") + std::to_string(s),
        static_cast<int>(s), [this, s, refresh, own] {
          if (refresh) states_[s]->refresh_eigen();
          preconditioned_[s] =
              states_[s]->precondition(grad_work_[s][own], cfg_.damping);
        });
    graph_.depends(ep, fx);
    graph_.depends(ep, gar);

    // Non-finite guard + byte accounting: mutates shared recovery state,
    // so it stays on the main thread; low priority keeps it behind every
    // slot's collectives (preconditioning stays in flight under comm).
    guard_id[s] = graph_.add_main(
        "guard" + std::to_string(s), prio_guard(s), [this, s] {
          // A non-finite preconditioned gradient must not enter the
          // compressor (NaN through quantization is undefined). Zero the
          // slot so the gather framing stays intact, and skip its update.
          if (!all_finite(preconditioned_[s].span())) {
            if (policy_.enabled && policy_.skip_nonfinite_steps) {
              skip_[s] = 1;
              ++comm_.recovery().nonfinite_skips;
              comm_.obs().count("recovery.nonfinite_skips");
              preconditioned_[s].fill(0.0F);
            } else {
              throw NonFiniteError(
                  "DistKfac: non-finite preconditioned gradient");
            }
          }
          orig_bytes_ += preconditioned_[s].size() * sizeof(float);
        });
    graph_.depends(guard_id[s], ep);
  }

  // Gather-group concatenation + compression (§4.4 layer aggregation):
  // one compute task per group, each on its pre-claimed stream.
  for (std::size_t g = 0; g < groups.size(); ++g) {
    const GroupPlan grp = groups[g];
    const auto gc = graph_.add_compute(
        gather_comp != nullptr ? "gather_compress" : "gather_pack",
        /*priority=*/0, [this, grp, g, gather_comp, step_seed] {
          auto& concat = group_concat_[g];
          concat.clear();
          for (std::size_t j = 0; j < grp.count; ++j) {
            const auto& k =
                preconditioned_[owned_[grp.rank][grp.first + j]];
            concat.insert(concat.end(), k.span().begin(), k.span().end());
          }
          if (gather_comp != nullptr) {
            tensor::Rng task_rng =
                compress::CompressionEngine::task_rng(step_seed, grp.tid);
            // Stream key (owner rank, first owned slot): stable across
            // steps while the shard layout holds, so stateful compressors
            // (EF residual, sketch counters) survive group reordering; a
            // reassignment changes the group's size and the state resets
            // itself (DESIGN.md §17).
            gather_comp->compress_stream_into(
                (static_cast<std::uint64_t>(grp.rank) << 32) |
                    owned_[grp.rank][grp.first],
                concat, task_rng, group_payloads_[g]);
          } else {
            auto& raw = group_payloads_[g];
            raw.resize(concat.size() * sizeof(float));
            if (!raw.empty()) {
              std::memcpy(raw.data(), concat.data(), raw.size());
            }
          }
        });
    for (std::size_t j = 0; j < grp.count; ++j) {
      graph_.depends(gc, guard_id[owned_[grp.rank][grp.first + j]]);
    }
    gcomp_ids.push_back(gc);
  }

  // The preconditioned-gradient exchange — one logical collective for all
  // layers. Monolithic mode (chunk_bytes == 0): a single
  // allgatherv + decode + recovery task. Chunked mode (DESIGN.md §15): a
  // pack task frames the per-rank send buffers and lays out their chunk
  // grids, then per-round frame (CRC) compute nodes pipeline against
  // per-round chunk collectives, and a finish task reassembles + decodes.
  // The bytes reaching decode_gathered are identical in both modes.
  StepGraph::TaskId gather{};
  if (cfg_.chunk_bytes == 0) {
    gather = graph_.add_main(
        "gather", kPrioGather,
        [this, groups, gather_comp, step_seed, world, lead] {
          auto gather_span =
              comm_.obs().span(obs::kMainTrack, "kfac.gather", "kfac");
          // Frame the payloads into the per-rank send buffers
          // ([u64 n][u64 sid x n][u64 psize][payload] groups).
          std::vector<std::vector<std::uint8_t>> send(world);
          for (std::size_t g = 0; g < groups.size(); ++g) {
            const GroupPlan& grp = groups[g];
            const auto& payload = group_payloads_[g];
            auto& buf = send[grp.rank];
            put_u64(buf, grp.count);
            for (std::size_t j = 0; j < grp.count; ++j) {
              put_u64(buf, owned_[grp.rank][grp.first + j]);
            }
            put_u64(buf, payload.size());
            buf.insert(buf.end(), payload.begin(), payload.end());
            comp_bytes_ += payload.size();
          }
          // Decode on every rank (identical bytes -> identical updates).
          // Decode once from the first active rank's stream and apply
          // everywhere. On decode failure: bounded re-send of the same
          // payloads, then an uncompressed re-send (fallback); repeated
          // failing steps degrade the gather to the uncompressed path for
          // the rest of the run.
          const obs::ObsHooks& hooks = comm_.obs();
          const std::size_t attempts =
              policy_.enabled ? policy_.max_decode_retries + 1 : 1;
          bool decoded = false;
          for (std::size_t attempt = 0; attempt < attempts && !decoded;
               ++attempt) {
            std::vector<std::vector<std::uint8_t>> recv;
            comm_.allgatherv(send, recv);
            try {
              decode_gathered(recv[lead], preconditioned_, gather_comp);
              decoded = true;
              gather_failures_ = 0;
            } catch (const PayloadError&) {
              if (!policy_.enabled) throw;
              if (attempt + 1 < attempts) {
                ++comm_.recovery().decode_retries;
                hooks.count("recovery.decode_retries");
                hooks.instant(obs::kMainTrack, "kfac.gather_retry",
                              "recovery");
                continue;
              }
              ++comm_.recovery().decode_failures;
              ++comm_.recovery().fallback_steps;
              hooks.count("recovery.decode_failures");
              hooks.count("recovery.fallback_steps");
              hooks.instant(obs::kMainTrack, "kfac.gather_fallback",
                            "recovery");
              if (++gather_failures_ >= policy_.fallback_after &&
                  gather_degraded_ == 0) {
                gather_degraded_ = 1;
                ++comm_.recovery().degraded_layers;
                hooks.count("recovery.degraded_layers");
              }
            }
          }
          if (!decoded) {
            // Uncompressed fallback exchange: raw payloads cannot fail
            // decode (framing damage would surface as PayloadError on the
            // retried collective, but injector events are one-shot, so
            // this is clean). The raw re-send delivers the full
            // preconditioned gradients, so stateful compressors roll
            // their per-stream state back (DESIGN.md §17).
            if (gather_comp != nullptr) {
              for (const GroupPlan& grp : groups) {
                gather_comp->notify_fallback(
                    (static_cast<std::uint64_t>(grp.rank) << 32) |
                    owned_[grp.rank][grp.first]);
              }
            }
            comp_bytes_ = 0;
            send =
                build_gather_payloads(preconditioned_, owned_, nullptr,
                                      step_seed);
            std::vector<std::vector<std::uint8_t>> recv;
            comm_.allgatherv(send, recv);
            decode_gathered(recv[lead], preconditioned_, nullptr);
          }
          gather_span.add_arg("orig_bytes", orig_bytes_);
          gather_span.add_arg("comp_bytes", comp_bytes_);
          gather_span.end();
          hooks.count("kfac.gather.orig_bytes", orig_bytes_);
          hooks.count("kfac.gather.comp_bytes", comp_bytes_);
          hooks.count("kfac.factor.orig_bytes", factor_orig_bytes_);
          hooks.count("kfac.factor.comp_bytes", factor_comp_bytes_);
        },
        /*is_comm=*/true);
    for (const auto gc : gcomp_ids) graph_.depends(gather, gc);
    for (std::size_t s = 0; s < slots; ++s) {
      graph_.depends(gather, guard_id[s]);
    }
  } else {
    // --- Chunked streaming pipeline (DESIGN.md §15) ---
    const std::size_t chunkb = cfg_.chunk_bytes;
    // Round count, fixed before any compression runs (the graph is built
    // on this thread while the pool is still compressing): the worst-case
    // payload bound of every group (GradientCompressor::max_payload_bytes)
    // plus the gather framing. Actual rounds never exceed it; surplus
    // round nodes no-op for a few cycles.
    std::vector<std::size_t> worst_rank(world, 0);
    for (const GroupPlan& grp : groups) {
      std::size_t elems = 0;
      for (std::size_t j = 0; j < grp.count; ++j) {
        elems += momentum_[owned_[grp.rank][grp.first + j]].size();
      }
      worst_rank[grp.rank] +=
          8 * (grp.count + 2) +
          (gather_comp != nullptr ? gather_comp->max_payload_bytes(elems)
                                  : elems * sizeof(float));
    }
    std::size_t max_rounds = 1;
    for (std::size_t r = 0; r < world; ++r) {
      if (!comm_.is_participating(r)) continue;
      max_rounds = std::max(
          max_rounds, codec::chunk::chunk_count_for(worst_rank[r], chunkb));
    }
    chunk_failed_ = 0;

    // Pack: frame the group payloads into the per-rank send buffers (the
    // exact bytes the monolithic path would allgatherv), lay out each
    // buffer's chunk grid, and reset the receive cursors. Runs on the
    // pool, overlapping earlier slots' collectives.
    const auto pack = graph_.add_compute(
        "chunk_pack", /*priority=*/0,
        [this, groups, worst_rank, world, chunkb] {
          if (chunk_send_.size() < world) chunk_send_.resize(world);
          if (chunk_producers_.size() < world) {
            chunk_producers_.resize(world);
          }
          if (chunk_consumers_.size() < world) {
            chunk_consumers_.resize(world);
          }
          for (std::size_t r = 0; r < world; ++r) chunk_send_[r].clear();
          for (std::size_t g = 0; g < groups.size(); ++g) {
            const GroupPlan& grp = groups[g];
            const auto& payload = group_payloads_[g];
            auto& buf = chunk_send_[grp.rank];
            put_u64(buf, grp.count);
            for (std::size_t j = 0; j < grp.count; ++j) {
              put_u64(buf, owned_[grp.rank][grp.first + j]);
            }
            put_u64(buf, payload.size());
            buf.insert(buf.end(), payload.begin(), payload.end());
            comp_bytes_ += payload.size();
          }
          for (std::size_t r = 0; r < world; ++r) {
            chunk_consumers_[r].reset();
            if (!comm_.is_participating(r)) continue;
            chunk_producers_[r].reserve_for(worst_rank[r], chunkb);
            chunk_producers_[r].prepare(
                compress::ByteView(chunk_send_[r]), chunkb);
          }
        });
    for (const auto gc : gcomp_ids) graph_.depends(pack, gc);
    for (std::size_t s = 0; s < slots; ++s) graph_.depends(pack, guard_id[s]);

    // Rounds: frame (header + CRC) on the pool while the previous round's
    // frames are on the wire, ship, and feed the cursors. Lower rounds
    // frame first so the pipeline never starves at the head.
    StepGraph::TaskId prev_send{};
    for (std::size_t k = 0; k < max_rounds; ++k) {
      const auto fr = graph_.add_compute(
          "chunk_frame" + std::to_string(k),
          static_cast<int>(max_rounds - k), [this, k, world] {
            for (std::size_t r = 0; r < world; ++r) {
              if (!comm_.is_participating(r)) continue;
              if (k < chunk_producers_[r].chunk_count()) {
                chunk_producers_[r].frame_chunk(k);
              }
            }
          });
      graph_.depends(fr, pack);
      const auto cs = graph_.add_main(
          "chunk_send" + std::to_string(k), kPrioGather,
          [this, k, world] {
            std::vector<std::span<const std::uint8_t>> frames(world);
            bool any = false;
            for (std::size_t r = 0; r < world; ++r) {
              if (!comm_.is_participating(r)) continue;
              if (k < chunk_producers_[r].chunk_count()) {
                frames[r] = chunk_producers_[r].chunk(k);
                any = true;
              }
            }
            // Every stream drained (round-bound slack), or an earlier
            // round already failed past its retries: nothing to ship.
            if (!any || chunk_failed_ != 0) return;
            auto round_span =
                comm_.obs().span(obs::kMainTrack, "chunk.send", "chunk");
            round_span.add_arg("round", k);
            const std::size_t attempts =
                policy_.enabled ? policy_.max_decode_retries + 1 : 1;
            std::vector<std::vector<std::uint8_t>> recv;
            for (std::size_t attempt = 0; attempt < attempts; ++attempt) {
              comm_.allgatherv_chunks(frames, recv, k);
              try {
                for (std::size_t r = 0; r < world; ++r) {
                  if (frames[r].empty()) continue;
                  // A failed attempt may have fed some ranks before
                  // another's frame threw; chunks_fed > k marks those
                  // as already done for this round.
                  if (chunk_consumers_[r].chunks_fed() > k) continue;
                  chunk_consumers_[r].feed(compress::ByteView(recv[r]));
                }
                round_span.end();
                return;
              } catch (const PayloadError&) {
                if (!policy_.enabled) throw;
                if (attempt + 1 < attempts) {
                  ++comm_.recovery().decode_retries;
                  comm_.obs().count("recovery.decode_retries");
                  comm_.obs().instant(obs::kMainTrack, "chunk.retry",
                                      "recovery");
                  continue;
                }
                // Retries exhausted mid-stream: reassembly is dead for
                // this step; the finish task runs the fallback ladder.
                chunk_failed_ = 1;
              }
            }
            round_span.end();
          },
          /*is_comm=*/true);
      graph_.depends(cs, fr);
      if (k > 0) graph_.depends(cs, prev_send);
      prev_send = cs;
    }

    // Finish: concatenate the reassembled per-rank payloads in rank order
    // (byte-identical to the monolithic recv stream) and run the same
    // decode + fallback/degradation ladder.
    gather = graph_.add_main(
        "gather", kPrioGather,
        [this, groups, gather_comp, step_seed, world, lead] {
          auto gather_span =
              comm_.obs().span(obs::kMainTrack, "kfac.gather", "kfac");
          const obs::ObsHooks& hooks = comm_.obs();
          bool decoded = false;
          try {
            if (chunk_failed_ != 0) {
              throw PayloadError("DistKfac: chunk stream failed");
            }
            chunk_concat_.clear();
            for (std::size_t r = 0; r < world; ++r) {
              if (!comm_.is_participating(r)) continue;
              const auto part = chunk_consumers_[r].payload();
              chunk_concat_.insert(chunk_concat_.end(), part.begin(),
                                   part.end());
            }
            decode_gathered(chunk_concat_, preconditioned_, gather_comp);
            decoded = true;
            gather_failures_ = 0;
          } catch (const PayloadError&) {
            if (!policy_.enabled) throw;
            ++comm_.recovery().decode_failures;
            ++comm_.recovery().fallback_steps;
            hooks.count("recovery.decode_failures");
            hooks.count("recovery.fallback_steps");
            hooks.instant(obs::kMainTrack, "kfac.gather_fallback",
                          "recovery");
            if (++gather_failures_ >= policy_.fallback_after &&
                gather_degraded_ == 0) {
              gather_degraded_ = 1;
              ++comm_.recovery().degraded_layers;
              hooks.count("recovery.degraded_layers");
            }
          }
          if (!decoded) {
            // Same stateful-compressor rollback as the monolithic
            // fallback (DESIGN.md §17).
            if (gather_comp != nullptr) {
              for (const GroupPlan& grp : groups) {
                gather_comp->notify_fallback(
                    (static_cast<std::uint64_t>(grp.rank) << 32) |
                    owned_[grp.rank][grp.first]);
              }
            }
            comp_bytes_ = 0;
            auto send = build_gather_payloads(preconditioned_, owned_,
                                              nullptr, step_seed);
            std::vector<std::vector<std::uint8_t>> recv;
            comm_.allgatherv(send, recv);
            decode_gathered(recv[lead], preconditioned_, nullptr);
          }
          gather_span.add_arg("orig_bytes", orig_bytes_);
          gather_span.add_arg("comp_bytes", comp_bytes_);
          gather_span.end();
          hooks.count("kfac.gather.orig_bytes", orig_bytes_);
          hooks.count("kfac.gather.comp_bytes", comp_bytes_);
          hooks.count("kfac.factor.orig_bytes", factor_orig_bytes_);
          hooks.count("kfac.factor.comp_bytes", factor_comp_bytes_);
        },
        /*is_comm=*/true);
    graph_.depends(gather, prev_send);
  }

  // Rejoin re-sync (DESIGN.md §14): one compute task per layer copies the
  // lead replica's parameters into every rejoining replica through a
  // sealed CKPT mini-frame — the same framing + CRC validation a
  // checkpoint restore goes through — so a rejoiner's state is
  // bit-identical to a survivor's, not merely close. The tasks overlap
  // the other layers' collectives on the engine pool; `update` waits for
  // them and then applies the step to rejoiners too, keeping them in
  // lockstep from this iteration on.
  std::vector<StepGraph::TaskId> resync_ids;
  const std::vector<std::size_t> rejoining = comm_.rejoining_ranks();
  if (!rejoining.empty()) {
    resync_ids.reserve(slots);
    for (std::size_t s = 0; s < slots; ++s) {
      const std::size_t li = layer_indices_[s];
      resync_ids.push_back(graph_.add_compute(
          "resync" + std::to_string(s), static_cast<int>(s),
          [this, li, lead, rejoining] {
            auto& src = replicas_[lead]->layer(li);
            codec::ckpt::Bytes body;
            codec::ckpt::put_tensor(body, *src.weight());
            codec::ckpt::put_tensor(body, *src.bias());
            const codec::ckpt::Bytes frame = codec::ckpt::seal_frame(body);
            const auto view = codec::ckpt::open_frame(frame);
            codec::wire::Reader reader(view);
            Tensor w = codec::ckpt::get_tensor(reader, src.weight()->shape(),
                                              "resync weight");
            Tensor b = codec::ckpt::get_tensor(reader, src.bias()->shape(),
                                              "resync bias");
            for (std::size_t j : rejoining) {
              auto& dst = replicas_[j]->layer(li);
              *dst.weight() = w;
              *dst.bias() = b;
            }
          }));
    }
    if (cfg_.layout == PrecondLayout::kSharded) {
      // Shard handoff (DESIGN.md §16): slots the *prospective* assignment
      // (participants + rejoiners, the group that forms next step) gives
      // to a rejoiner have their factor state shipped through the same
      // sealed CKPT mini-frame a checkpoint restore uses — CRC-validated,
      // so the new owner's shard is bit-identical to the survivor's copy.
      // The simulator stores factor state once, so restoring the opened
      // frame is the handoff; what matters is that the bytes made the
      // validated round-trip. Ordered after the slot's guard: by then
      // nothing touches states_[s] again this step.
      std::vector<std::size_t> future = comm_.participant_ranks();
      future.insert(future.end(), rejoining.begin(), rejoining.end());
      std::sort(future.begin(), future.end());
      const std::vector<std::size_t> prospective = compute_owners(future);
      for (std::size_t s = 0; s < slots; ++s) {
        const bool handoff =
            std::find(rejoining.begin(), rejoining.end(), prospective[s]) !=
            rejoining.end();
        if (!handoff) continue;
        hooks.count("kfac.shard_resyncs");
        const auto fr = graph_.add_compute(
            "factor_resync" + std::to_string(s), static_cast<int>(s),
            [this, s] {
              codec::ckpt::Bytes body;
              codec::ckpt::put_tensor(body, states_[s]->factor_a());
              codec::ckpt::put_tensor(body, states_[s]->factor_g());
              const codec::ckpt::Bytes frame = codec::ckpt::seal_frame(body);
              const auto view = codec::ckpt::open_frame(frame);
              codec::wire::Reader reader(view);
              Tensor a = codec::ckpt::get_tensor(
                  reader, states_[s]->factor_a().shape(), "factor resync a");
              Tensor g = codec::ckpt::get_tensor(
                  reader, states_[s]->factor_g().shape(), "factor resync g");
              states_[s]->factor_a() = std::move(a);
              states_[s]->factor_g() = std::move(g);
            });
        graph_.depends(fr, guard_id[s]);
        resync_ids.push_back(fr);
      }
    }
  }

  // Momentum + weight update, identically on every surviving replica
  // (participants plus freshly re-synced rejoiners), ascending slots (the
  // deterministic float-update order).
  const auto update = graph_.add_main(
      "update", kPrioGather - 1, [this, lr, world, slots] {
        for (std::size_t s = 0; s < slots; ++s) {
          if (skip_[s]) continue;  // non-finite slot, zeroed pre-gather.
          // Non-finite guard: skip the layer (momentum untouched) rather
          // than poisoning every replica's weights.
          if (!all_finite(preconditioned_[s].span())) {
            if (policy_.enabled && policy_.skip_nonfinite_steps) {
              ++comm_.recovery().nonfinite_skips;
              comm_.obs().count("recovery.nonfinite_skips");
              continue;
            }
            throw NonFiniteError(
                "DistKfac: non-finite preconditioned gradient");
          }
          momentum_[s].axpby(static_cast<float>(cfg_.momentum), 1.0F,
                             preconditioned_[s]);
          for (std::size_t r = 0; r < world; ++r) {
            if (!comm_.is_participating(r) && !comm_.is_rejoining(r)) {
              continue;
            }
            apply_combined_update(replicas_[r]->layer(layer_indices_[s]),
                                  momentum_[s], lr);
          }
        }
      });
  graph_.depends(update, gather);
  for (const auto rs : resync_ids) graph_.depends(update, rs);

  sched_stats_ = graph_.run(eng, hooks);
}

void DistKfac::save_state(std::vector<std::uint8_t>& out) const {
  put_u64(out, layer_indices_.size());
  for (std::size_t s = 0; s < layer_indices_.size(); ++s) {
    put_tensor(out, momentum_[s]);
    const auto& st = *states_[s];
    put_tensor(out, st.factor_a());
    put_tensor(out, st.factor_g());
    out.push_back(st.has_eigen() ? 1 : 0);
    if (st.has_eigen()) {
      put_tensor(out, st.eigen_a().eigenvectors);
      put_u64(out, st.eigen_a().eigenvalues.size());
      for (float v : st.eigen_a().eigenvalues) put_f32(out, v);
      put_tensor(out, st.eigen_g().eigenvectors);
      put_u64(out, st.eigen_g().eigenvalues.size());
      for (float v : st.eigen_g().eigenvalues) put_f32(out, v);
    }
    put_u64(out, st.updates());
  }
  out.push_back(gather_degraded_);
  put_u64(out, gather_failures_);
  // Shard section (DESIGN.md §16): layout + assignment policy and the
  // slot -> owner table the step ran under, so a restore can verify the
  // recomputed assignment (a pure function of membership + model shape)
  // agrees with the checkpointed one.
  out.push_back(static_cast<std::uint8_t>(cfg_.layout));
  out.push_back(static_cast<std::uint8_t>(cfg_.assignment));
  const auto& owners = shard_owners();
  put_u64(out, owners.size());
  for (std::size_t o : owners) put_u64(out, o);
}

void DistKfac::load_state(codec::wire::Reader& reader) {
  const auto slots = reader.bounded_u64(1 << 20, "kfac layer slots");
  if (slots != layer_indices_.size()) {
    throw PayloadError("DistKfac: checkpoint layer count mismatch");
  }
  for (std::size_t s = 0; s < layer_indices_.size(); ++s) {
    auto& st = *states_[s];
    const std::size_t out = st.factor_g().rows();
    const std::size_t in_aug = st.factor_a().rows();
    momentum_[s] = get_tensor(reader, {out, in_aug});
    Tensor a = get_tensor(reader, {in_aug, in_aug});
    Tensor g = get_tensor(reader, {out, out});
    const bool has_eigen = reader.u8() != 0;
    tensor::EigenDecomposition eig_a, eig_g;
    if (has_eigen) {
      eig_a.eigenvectors = get_tensor(reader, {in_aug, in_aug});
      const auto na = reader.bounded_u64(1 << 20, "kfac eigenvalues");
      if (na != in_aug) {
        throw PayloadError("DistKfac: checkpoint eigenvalue count mismatch");
      }
      eig_a.eigenvalues.resize(na);
      for (auto& v : eig_a.eigenvalues) v = reader.f32();
      eig_g.eigenvectors = get_tensor(reader, {out, out});
      const auto ng = reader.bounded_u64(1 << 20, "kfac eigenvalues");
      if (ng != out) {
        throw PayloadError("DistKfac: checkpoint eigenvalue count mismatch");
      }
      eig_g.eigenvalues.resize(ng);
      for (auto& v : eig_g.eigenvalues) v = reader.f32();
    }
    const auto updates = reader.bounded_u64(~std::uint32_t{0}, "kfac updates");
    st.restore(std::move(a), std::move(g), std::move(eig_a), std::move(eig_g),
               has_eigen, updates);
  }
  gather_degraded_ = reader.u8();
  gather_failures_ = static_cast<std::uint32_t>(
      reader.bounded_u64(~std::uint32_t{0}, "kfac gather failures"));
  // Shard section: the layout/assignment the checkpoint was taken under
  // must match this optimizer's config (restoring a sharded run into a
  // replicated one would silently change comm and attribution), and every
  // owner must be a valid rank. The cached assignment is invalidated
  // rather than trusted: it recomputes deterministically from the
  // restored membership, and load-order between optimizer and membership
  // sections must not matter.
  const std::uint8_t layout = reader.u8();
  const std::uint8_t assignment = reader.u8();
  if (layout != static_cast<std::uint8_t>(cfg_.layout) ||
      assignment != static_cast<std::uint8_t>(cfg_.assignment)) {
    throw PayloadError("DistKfac: checkpoint shard layout mismatch");
  }
  const auto owner_count = reader.bounded_u64(1 << 20, "kfac shard owners");
  if (owner_count != layer_indices_.size()) {
    throw PayloadError("DistKfac: checkpoint shard owner count mismatch");
  }
  for (std::size_t s = 0; s < owner_count; ++s) {
    const auto o = reader.bounded_u64(comm_.world_size(), "kfac shard owner");
    if (o >= comm_.world_size()) {
      throw PayloadError("DistKfac: checkpoint shard owner out of range");
    }
  }
  shard_owner_.clear();
  shard_mask_.clear();
}

}  // namespace compso::optim
