#include "src/optim/dist_kfac.hpp"

#include "src/tensor/matrix_ops.hpp"

#include <cmath>
#include <cstring>
#include <stdexcept>

namespace compso::optim {
namespace {

bool all_finite(std::span<const float> values) noexcept {
  for (float v : values) {
    if (!std::isfinite(v)) return false;
  }
  return true;
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int b = 0; b < 8; ++b) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * b)));
  }
}

void put_f32(std::vector<std::uint8_t>& out, float v) {
  std::uint32_t bits;
  std::memcpy(&bits, &v, 4);
  for (int b = 0; b < 4; ++b) {
    out.push_back(static_cast<std::uint8_t>(bits >> (8 * b)));
  }
}

void put_tensor(std::vector<std::uint8_t>& out, const Tensor& t) {
  put_u64(out, t.size());
  const std::size_t at = out.size();
  out.resize(at + t.size() * sizeof(float));
  if (!t.empty()) std::memcpy(out.data() + at, t.data(), t.size() * 4);
}

/// Reads `expected` floats into a tensor of the given shape.
Tensor get_tensor(codec::wire::Reader& r, std::vector<std::size_t> shape) {
  const auto n = r.bounded_u64(codec::wire::kMaxElementCount, "kfac tensor");
  Tensor t(std::move(shape));
  if (n != t.size()) {
    throw PayloadError("DistKfac: checkpoint tensor size mismatch");
  }
  for (std::size_t i = 0; i < t.size(); ++i) t[i] = r.f32();
  return t;
}

}  // namespace

DistKfac::DistKfac(DistKfacConfig config, comm::Communicator& comm,
                   std::vector<nn::Model*> replicas)
    : cfg_(config), comm_(comm), replicas_(std::move(replicas)) {
  if (replicas_.size() != comm_.world_size()) {
    throw std::invalid_argument("DistKfac: one replica per rank required");
  }
  layer_indices_ = replicas_[0]->trainable_layers();
  for (std::size_t li : layer_indices_) {
    auto& l = replicas_[0]->layer(li);
    const std::size_t out = l.weight()->rows();
    const std::size_t in_aug = l.weight()->cols() + 1;
    states_.push_back(std::make_unique<KfacLayerState>(in_aug, out));
    momentum_.emplace_back(
        Tensor({out, in_aug}));
  }
}

void DistKfac::exchange_covariances(std::vector<Tensor>& local,
                                    tensor::Rng& rng) {
  const std::size_t world = comm_.world_size();
  const std::size_t active = comm_.active_count();
  const std::size_t lead = comm_.first_active_rank();
  if (factor_compressor_ == nullptr) {
    std::vector<std::span<float>> views;
    views.reserve(world);
    for (auto& t : local) views.push_back(t.span());
    comm_.allreduce_sum(views);
    local[lead] *= 1.0F / static_cast<float>(active);
    if (lead != 0) local[0] = local[lead];
    return;
  }
  // Compressed path (§7): each rank compresses its local covariance, the
  // payloads are all-gathered, every rank decompresses and averages.
  // Payloads are compressed once; a retry re-sends the same bytes.
  const std::size_t n = local[lead].size();
  std::vector<std::vector<std::uint8_t>> send(world);
  for (std::size_t r = 0; r < world; ++r) {
    if (!comm_.is_active(r)) continue;
    send[r] = factor_compressor_->compress(local[r].span(), rng);
    factor_orig_bytes_ += n * sizeof(float);
    factor_comp_bytes_ += send[r].size();
  }
  const std::size_t attempts =
      policy_.enabled ? policy_.max_decode_retries + 1 : 1;
  for (std::size_t attempt = 0; attempt < attempts; ++attempt) {
    std::vector<std::vector<std::uint8_t>> recv;
    comm_.allgatherv(send, recv);
    try {
      Tensor avg(local[lead]);
      avg.fill(0.0F);
      // Decode from the *received* stream (sliced by the known send
      // sizes), so transport corruption reaches the validation layer.
      const compress::ByteView gathered(recv[lead]);
      std::size_t off = 0;
      for (std::size_t r = 0; r < world; ++r) {
        if (!comm_.is_active(r)) continue;
        if (send[r].size() > gathered.size() - off) {
          throw PayloadError("DistKfac: gathered stream truncated");
        }
        const auto rec = factor_compressor_->decompress(
            gathered.subspan(off, send[r].size()));
        off += send[r].size();
        if (rec.size() != n) {
          throw PayloadError("DistKfac: factor decompress size mismatch");
        }
        for (std::size_t i = 0; i < n; ++i) {
          avg[i] += rec[i] / static_cast<float>(active);
        }
      }
      local[0] = std::move(avg);
      return;
    } catch (const PayloadError&) {
      if (!policy_.enabled) throw;
      if (attempt + 1 < attempts) {
        ++comm_.recovery().decode_retries;
        continue;
      }
      ++comm_.recovery().decode_failures;
      ++comm_.recovery().fallback_steps;
      // Fallback: plain allreduce of the raw covariances.
      std::vector<std::span<float>> views;
      views.reserve(world);
      for (auto& t : local) views.push_back(t.span());
      comm_.allreduce_sum(views);
      local[lead] *= 1.0F / static_cast<float>(active);
      if (lead != 0) local[0] = local[lead];
      return;
    }
  }
}

std::vector<std::vector<std::uint8_t>> DistKfac::build_gather_payloads(
    const std::vector<Tensor>& preconditioned,
    const std::vector<std::vector<std::size_t>>& owned,
    const compress::GradientCompressor* compressor, tensor::Rng& rng) {
  const std::size_t world = comm_.world_size();
  const std::size_t m = std::max<std::size_t>(cfg_.aggregation, 1);
  auto append_u64 = [](std::vector<std::uint8_t>& buf, std::uint64_t v) {
    for (int b = 0; b < 8; ++b) {
      buf.push_back(static_cast<std::uint8_t>(v >> (8 * b)));
    }
  };
  std::vector<std::vector<std::uint8_t>> send(world);
  for (std::size_t r = 0; r < world; ++r) {
    for (std::size_t i = 0; i < owned[r].size(); i += m) {
      const std::size_t group_end = std::min(i + m, owned[r].size());
      std::vector<float> concat;
      for (std::size_t j = i; j < group_end; ++j) {
        const auto& k = preconditioned[owned[r][j]];
        concat.insert(concat.end(), k.span().begin(), k.span().end());
      }
      const auto payload =
          compressor != nullptr
              ? compressor->compress(concat, rng)
              : [&] {
                  compress::Bytes raw(concat.size() * sizeof(float));
                  if (!raw.empty()) {
                    std::memcpy(raw.data(), concat.data(), raw.size());
                  }
                  return raw;
                }();
      auto& buf = send[r];
      append_u64(buf, group_end - i);
      for (std::size_t j = i; j < group_end; ++j) {
        append_u64(buf, owned[r][j]);
      }
      append_u64(buf, payload.size());
      buf.insert(buf.end(), payload.begin(), payload.end());
      comp_bytes_ += payload.size();
    }
  }
  return send;
}

void DistKfac::decode_gathered(
    const std::vector<std::uint8_t>& buf, std::vector<Tensor>& preconditioned,
    const compress::GradientCompressor* compressor) const {
  std::size_t pos = 0;
  auto read_u64 = [&](std::size_t at) {
    std::uint64_t v = 0;
    for (int b = 0; b < 8; ++b) {
      v |= static_cast<std::uint64_t>(buf[at + static_cast<std::size_t>(b)])
           << (8 * b);
    }
    return v;
  };
  std::vector<std::uint8_t> seen(preconditioned.size(), 0);
  while (pos + 8 <= buf.size()) {
    const std::uint64_t n = read_u64(pos);
    pos += 8;
    if (n > preconditioned.size() || pos + 8 * n + 8 > buf.size()) {
      throw PayloadError("DistKfac: corrupt allgather framing");
    }
    std::vector<std::size_t> sids(n);
    std::size_t group_elems = 0;
    for (std::uint64_t j = 0; j < n; ++j) {
      sids[j] = read_u64(pos);
      pos += 8;
      if (sids[j] >= preconditioned.size() || seen[sids[j]] != 0) {
        throw PayloadError("DistKfac: bad layer id in payload");
      }
      seen[sids[j]] = 1;
      group_elems += preconditioned[sids[j]].size();
    }
    const std::uint64_t psize = read_u64(pos);
    pos += 8;
    if (psize > buf.size() || pos + psize > buf.size()) {
      throw PayloadError("DistKfac: corrupt allgather payload");
    }
    const std::span<const std::uint8_t> payload(buf.data() + pos, psize);
    pos += psize;
    std::vector<float> values;
    if (compressor != nullptr) {
      values = compressor->decompress(payload);
    } else {
      if (psize % sizeof(float) != 0) {
        throw PayloadError("DistKfac: raw payload not float-aligned");
      }
      values.resize(psize / sizeof(float));
      if (psize > 0) {
        std::memcpy(values.data(), payload.data(), psize);
      }
    }
    if (values.size() != group_elems) {
      throw PayloadError("DistKfac: decompressed size mismatch");
    }
    std::size_t off = 0;
    for (std::size_t sid : sids) {
      Tensor& k = preconditioned[sid];
      std::copy(values.begin() + static_cast<std::ptrdiff_t>(off),
                values.begin() + static_cast<std::ptrdiff_t>(off + k.size()),
                k.data());
      off += k.size();
    }
  }
  if (pos != buf.size()) {
    throw PayloadError("DistKfac: trailing bytes in gathered stream");
  }
  // A dropped allgatherv entry leaves a well-formed shorter stream; the
  // coverage check is what turns "my owner's group never arrived" into a
  // decode failure the retry policy can act on.
  for (std::size_t s = 0; s < seen.size(); ++s) {
    if (seen[s] == 0) {
      throw PayloadError("DistKfac: missing layer group in gathered stream");
    }
  }
}

void DistKfac::step(std::size_t iteration, double lr,
                    const compress::GradientCompressor* compressor,
                    tensor::Rng& rng) {
  const std::size_t world = comm_.world_size();
  const std::size_t active = comm_.active_count();
  const std::size_t lead = comm_.first_active_rank();
  factor_orig_bytes_ = 0;
  factor_comp_bytes_ = 0;

  // --- 1+2: covariance computation and factor allreduce (steps 1-2).
  for (std::size_t s = 0; s < layer_indices_.size(); ++s) {
    const std::size_t li = layer_indices_[s];
    // Per-rank local covariances (evicted ranks contribute zero tensors of
    // the right shape so the collective's slot layout stays intact).
    std::vector<Tensor> local_a(world), local_g(world);
    std::size_t shape_a = 0, shape_g = 0;
    for (std::size_t r = 0; r < world; ++r) {
      if (!comm_.is_active(r)) continue;
      auto& layer = replicas_[r]->layer(li);
      const Tensor* a = layer.kfac_input();
      const Tensor* g = layer.kfac_grad_output();
      if (a == nullptr || g == nullptr || a->empty() || g->empty()) {
        throw std::logic_error("DistKfac: run forward/backward first");
      }
      const auto batch = static_cast<float>(a->rows());
      tensor::syrk_tn(*a, 1.0F / batch, 0.0F, local_a[r]);
      tensor::syrk_tn(*g, batch, 0.0F, local_g[r]);
      shape_a = local_a[r].rows();
      shape_g = local_g[r].rows();
    }
    for (std::size_t r = 0; r < world; ++r) {
      if (comm_.is_active(r)) continue;
      local_a[r] = Tensor({shape_a, shape_a});
      local_g[r] = Tensor({shape_g, shape_g});
    }
    // Exchange and average the factors every rank must agree on.
    exchange_covariances(local_a, rng);
    exchange_covariances(local_g, rng);
    // Blend into the shared running-average state. (All ranks hold the
    // same state after the allreduce; the simulator stores it once.)
    states_[s]->blend_factors(local_a[0], local_g[0], cfg_.stat_decay);
  }

  // --- 2b: gradient allreduce (data-parallel average of SGD gradients).
  momentum_workspace_.clear();
  for (std::size_t s = 0; s < layer_indices_.size(); ++s) {
    const std::size_t li = layer_indices_[s];
    std::vector<Tensor> grads(world);
    const auto shape = momentum_[s].shape();
    for (std::size_t r = 0; r < world; ++r) {
      grads[r] = comm_.is_active(r)
                     ? combined_gradient(replicas_[r]->layer(li))
                     : Tensor(shape);
    }
    std::vector<std::span<float>> views;
    views.reserve(world);
    for (auto& t : grads) views.push_back(t.span());
    comm_.allreduce_sum(views);
    grads[lead] *= 1.0F / static_cast<float>(active);
    // Stash the averaged gradient back into replica 0's layer grads via
    // the momentum path below; keep it in a temp list.
    momentum_workspace_.push_back(std::move(grads[lead]));
  }

  // --- 3: eigendecomposition refresh on owner ranks (partitioned work).
  const bool refresh =
      iteration % cfg_.eigen_refresh_every == 0 || !states_[0]->has_eigen();
  if (refresh) {
    for (auto& st : states_) st->refresh_eigen();
  }

  // --- 4: owners precondition their layers; 5: allgather(v) to all ranks.
  // Each owner aggregates up to m of its layers per compression call
  // (§4.4's layer aggregation): the concatenated buffer is compressed
  // once, serialized as [u64 n][u64 sid x n][u64 psize][payload].
  std::vector<Tensor> preconditioned(layer_indices_.size());
  std::vector<std::uint8_t> skip(layer_indices_.size(), 0);
  orig_bytes_ = 0;
  comp_bytes_ = 0;
  std::vector<std::vector<std::size_t>> owned(world);
  for (std::size_t s = 0; s < layer_indices_.size(); ++s) {
    preconditioned[s] =
        states_[s]->precondition(momentum_workspace_[s], cfg_.damping);
    // A non-finite preconditioned gradient must not enter the compressor
    // (NaN through quantization is undefined). Zero the slot so the gather
    // framing stays intact, and skip its update below.
    if (!all_finite(preconditioned[s].span())) {
      if (policy_.enabled && policy_.skip_nonfinite_steps) {
        skip[s] = 1;
        ++comm_.recovery().nonfinite_skips;
        preconditioned[s].fill(0.0F);
      } else {
        throw NonFiniteError("DistKfac: non-finite preconditioned gradient");
      }
    }
    orig_bytes_ += preconditioned[s].size() * sizeof(float);
    owned[owner_of(s)].push_back(s);
  }
  const compress::GradientCompressor* gather_comp =
      gather_degraded_ != 0 ? nullptr : compressor;
  auto send = build_gather_payloads(preconditioned, owned, gather_comp, rng);

  // --- decode on every rank (identical bytes -> identical updates).
  // Decode once from the first active rank's stream and apply everywhere.
  // On decode failure: bounded re-send of the same payloads, then an
  // uncompressed re-send (fallback); repeated failing steps degrade the
  // gather to the uncompressed path for the rest of the run.
  const std::size_t attempts =
      policy_.enabled ? policy_.max_decode_retries + 1 : 1;
  bool decoded = false;
  for (std::size_t attempt = 0; attempt < attempts && !decoded; ++attempt) {
    std::vector<std::vector<std::uint8_t>> recv;
    comm_.allgatherv(send, recv);
    try {
      decode_gathered(recv[lead], preconditioned, gather_comp);
      decoded = true;
      gather_failures_ = 0;
    } catch (const PayloadError&) {
      if (!policy_.enabled) throw;
      if (attempt + 1 < attempts) {
        ++comm_.recovery().decode_retries;
        continue;
      }
      ++comm_.recovery().decode_failures;
      ++comm_.recovery().fallback_steps;
      if (++gather_failures_ >= policy_.fallback_after &&
          gather_degraded_ == 0) {
        gather_degraded_ = 1;
        ++comm_.recovery().degraded_layers;
      }
    }
  }
  if (!decoded) {
    // Uncompressed fallback exchange: raw payloads cannot fail decode
    // (framing damage would surface as PayloadError on the retried
    // collective, but injector events are one-shot, so this is clean).
    comp_bytes_ = 0;
    send = build_gather_payloads(preconditioned, owned, nullptr, rng);
    std::vector<std::vector<std::uint8_t>> recv;
    comm_.allgatherv(send, recv);
    decode_gathered(recv[lead], preconditioned, nullptr);
  }

  // --- momentum + weight update, identically on every surviving replica.
  for (std::size_t s = 0; s < layer_indices_.size(); ++s) {
    if (skip[s]) continue;  // non-finite slot, zeroed pre-gather.
    // Non-finite guard: skip the layer (momentum untouched) rather than
    // poisoning every replica's weights.
    if (!all_finite(preconditioned[s].span())) {
      if (policy_.enabled && policy_.skip_nonfinite_steps) {
        ++comm_.recovery().nonfinite_skips;
        continue;
      }
      throw NonFiniteError("DistKfac: non-finite preconditioned gradient");
    }
    momentum_[s].axpby(static_cast<float>(cfg_.momentum), 1.0F,
                       preconditioned[s]);
    for (std::size_t r = 0; r < world; ++r) {
      if (!comm_.is_active(r)) continue;
      apply_combined_update(replicas_[r]->layer(layer_indices_[s]),
                            momentum_[s], lr);
    }
  }
  momentum_workspace_.clear();
}

void DistKfac::save_state(std::vector<std::uint8_t>& out) const {
  put_u64(out, layer_indices_.size());
  for (std::size_t s = 0; s < layer_indices_.size(); ++s) {
    put_tensor(out, momentum_[s]);
    const auto& st = *states_[s];
    put_tensor(out, st.factor_a());
    put_tensor(out, st.factor_g());
    out.push_back(st.has_eigen() ? 1 : 0);
    if (st.has_eigen()) {
      put_tensor(out, st.eigen_a().eigenvectors);
      put_u64(out, st.eigen_a().eigenvalues.size());
      for (float v : st.eigen_a().eigenvalues) put_f32(out, v);
      put_tensor(out, st.eigen_g().eigenvectors);
      put_u64(out, st.eigen_g().eigenvalues.size());
      for (float v : st.eigen_g().eigenvalues) put_f32(out, v);
    }
    put_u64(out, st.updates());
  }
  out.push_back(gather_degraded_);
  put_u64(out, gather_failures_);
}

void DistKfac::load_state(codec::wire::Reader& reader) {
  const auto slots = reader.bounded_u64(1 << 20, "kfac layer slots");
  if (slots != layer_indices_.size()) {
    throw PayloadError("DistKfac: checkpoint layer count mismatch");
  }
  for (std::size_t s = 0; s < layer_indices_.size(); ++s) {
    auto& st = *states_[s];
    const std::size_t out = st.factor_g().rows();
    const std::size_t in_aug = st.factor_a().rows();
    momentum_[s] = get_tensor(reader, {out, in_aug});
    Tensor a = get_tensor(reader, {in_aug, in_aug});
    Tensor g = get_tensor(reader, {out, out});
    const bool has_eigen = reader.u8() != 0;
    tensor::EigenDecomposition eig_a, eig_g;
    if (has_eigen) {
      eig_a.eigenvectors = get_tensor(reader, {in_aug, in_aug});
      const auto na = reader.bounded_u64(1 << 20, "kfac eigenvalues");
      if (na != in_aug) {
        throw PayloadError("DistKfac: checkpoint eigenvalue count mismatch");
      }
      eig_a.eigenvalues.resize(na);
      for (auto& v : eig_a.eigenvalues) v = reader.f32();
      eig_g.eigenvectors = get_tensor(reader, {out, out});
      const auto ng = reader.bounded_u64(1 << 20, "kfac eigenvalues");
      if (ng != out) {
        throw PayloadError("DistKfac: checkpoint eigenvalue count mismatch");
      }
      eig_g.eigenvalues.resize(ng);
      for (auto& v : eig_g.eigenvalues) v = reader.f32();
    }
    const auto updates = reader.bounded_u64(~std::uint32_t{0}, "kfac updates");
    st.restore(std::move(a), std::move(g), std::move(eig_a), std::move(eig_g),
               has_eigen, updates);
  }
  gather_degraded_ = reader.u8();
  gather_failures_ = static_cast<std::uint32_t>(
      reader.bounded_u64(~std::uint32_t{0}, "kfac gather failures"));
}

}  // namespace compso::optim
