#include "src/optim/step_graph.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace compso::optim {

StepGraph::TaskId StepGraph::add_compute(std::string name, int priority,
                                         std::function<void()> fn) {
  tasks_.push_back({std::move(name), priority, std::move(fn), /*compute=*/true,
                    /*comm=*/false, {}});
  return tasks_.size() - 1;
}

StepGraph::TaskId StepGraph::add_main(std::string name, int priority,
                                      std::function<void()> fn, bool is_comm) {
  tasks_.push_back({std::move(name), priority, std::move(fn),
                    /*compute=*/false, is_comm, {}});
  return tasks_.size() - 1;
}

void StepGraph::depends(TaskId task, TaskId on) {
  if (task >= tasks_.size() || on >= tasks_.size()) {
    throw std::logic_error("StepGraph::depends: unknown task id");
  }
  if (task == on) {
    throw std::logic_error("StepGraph::depends: task cannot depend on itself");
  }
  tasks_[task].deps.push_back(on);
}

void StepGraph::clear() { tasks_.clear(); }

std::vector<StepGraph::TaskId> StepGraph::order() const {
  const std::size_t n = tasks_.size();
  std::vector<std::size_t> missing(n, 0);
  std::vector<std::vector<TaskId>> dependents(n);
  for (TaskId t = 0; t < n; ++t) {
    missing[t] = tasks_[t].deps.size();
    for (TaskId d : tasks_[t].deps) dependents[d].push_back(t);
  }
  // Kahn's algorithm with a deterministic selection rule: among ready
  // tasks, compute before main (so submissions are as eager as the
  // edges allow), then priority descending, then insertion order. The
  // ready set is small (tens of tasks), so a linear scan beats heap
  // bookkeeping and keeps ties trivially stable.
  std::vector<TaskId> ready;
  for (TaskId t = 0; t < n; ++t) {
    if (missing[t] == 0) ready.push_back(t);
  }
  std::vector<TaskId> out;
  out.reserve(n);
  while (!ready.empty()) {
    std::size_t best = 0;
    for (std::size_t i = 1; i < ready.size(); ++i) {
      const Task& a = tasks_[ready[i]];
      const Task& b = tasks_[ready[best]];
      const bool wins =
          a.compute != b.compute
              ? a.compute
              : (a.priority != b.priority ? a.priority > b.priority
                                          : ready[i] < ready[best]);
      if (wins) best = i;
    }
    const TaskId t = ready[best];
    ready.erase(ready.begin() + static_cast<std::ptrdiff_t>(best));
    out.push_back(t);
    for (TaskId d : dependents[t]) {
      if (--missing[d] == 0) ready.push_back(d);
    }
  }
  if (out.size() != n) {
    throw std::logic_error("StepGraph: dependency cycle");
  }
  return out;
}

StepGraph::Stats StepGraph::run(compress::CompressionEngine& engine,
                                const obs::ObsHooks& hooks) {
  const std::vector<TaskId> ord = order();
  const std::size_t n = tasks_.size();
  Stats st;
  st.tasks = n;
  for (const Task& t : tasks_) {
    if (t.compute) {
      ++st.compute_tasks;
    } else {
      ++st.main_tasks;
      if (t.comm) ++st.comm_tasks;
    }
  }

  const bool tracing = hooks.tracer != nullptr;
  std::vector<compress::CompressionEngine::Ticket> ticket(n, 0);
  std::vector<std::uint8_t> reaped(n, 0);
  std::vector<std::uint64_t> submit_tick(n, 0);
  std::uint64_t tick = 0;  ///< one per scheduling event, main thread only.
  std::size_t in_flight = 0;
  std::size_t unsubmitted_compute = st.compute_tasks;

  // Reaps compute task `d`: waits its ticket (rethrowing its exception)
  // and records the [submission, reap) span on the task's own track.
  // The reap point sits in the total order, so `tick`, `in_flight` and
  // the recorded spans are identical at any engine thread count.
  const auto reap = [&](TaskId d) {
    const auto record_span = [&](std::uint64_t end) {
      if (tracing) {
        hooks.complete(
            obs::kSchedTrackBase + 1 + static_cast<std::uint32_t>(d),
            "sched." + tasks_[d].name, "sched.task", submit_tick[d],
            end - submit_tick[d], {{"task", d}});
      }
    };
    reaped[d] = 1;
    --in_flight;
    const std::uint64_t end = tick++;
    try {
      engine.wait(ticket[d]);
    } catch (...) {
      record_span(end);
      throw;
    }
    record_span(end);
  };

  try {
    for (TaskId t : ord) {
      // A task's main-task deps already ran (they precede it in the
      // order); compute deps may still be in flight — reap them now, at
      // the last admissible point.
      for (TaskId d : tasks_[t].deps) {
        if (tasks_[d].compute && !reaped[d]) reap(d);
      }
      Task& task = tasks_[t];
      if (task.compute) {
        submit_tick[t] = tick++;
        --unsubmitted_compute;
        ticket[t] = engine.submit(std::move(task.fn), task.name);
        ++in_flight;
        st.max_in_flight = std::max(st.max_in_flight, in_flight);
      } else {
        if (task.comm) {
          if (in_flight > 0) {
            ++st.overlapped_comm;
          } else if (unsubmitted_compute > 0) {
            ++st.idle_comm;
          }
        }
        const std::uint64_t start = tick++;
        const auto record = [&] {
          if (tracing) {
            hooks.complete(obs::kSchedTrackBase, "sched." + task.name,
                           task.comm ? "sched.comm" : "sched.main", start, 1,
                           {{"task", t}});
          }
          ++tick;
        };
        try {
          task.fn();
        } catch (...) {
          record();
          throw;
        }
        record();
      }
    }
    // Reap every compute task nothing depended on, in submission order.
    for (TaskId t : ord) {
      if (tasks_[t].compute && !reaped[t]) reap(t);
    }
  } catch (...) {
    // Outstanding tasks capture optimizer state; reap them before the
    // exception unwinds past our caller. Their own errors must not mask
    // the original exception.
    try {
      engine.wait_all();
    } catch (...) {
    }
    throw;
  }

  hooks.count("sched.tasks", st.tasks);
  hooks.count("sched.compute_tasks", st.compute_tasks);
  hooks.count("sched.comm_tasks", st.comm_tasks);
  hooks.count("sched.overlapped_comm", st.overlapped_comm);
  hooks.count("sched.idle_comm", st.idle_comm);
  hooks.observe("sched.max_in_flight", st.max_in_flight);
  return st;
}

}  // namespace compso::optim
