#include "src/optim/dist_sgd.hpp"

#include "src/codec/ckpt.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <stdexcept>

namespace compso::optim {
namespace {

/// Flattens a layer's [W | b] gradient into a reusable vector.
void flat_gradient_into(nn::Layer& layer, std::vector<float>& out) {
  auto* wg = layer.weight_grad();
  auto* bg = layer.bias_grad();
  out.resize(wg->size() + bg->size());
  std::copy(wg->span().begin(), wg->span().end(), out.begin());
  std::copy(bg->span().begin(), bg->span().end(),
            out.begin() + static_cast<std::ptrdiff_t>(wg->size()));
}

void apply_flat_update(nn::Layer& layer, std::span<const float> update,
                       double lr) {
  auto* w = layer.weight();
  auto* b = layer.bias();
  for (std::size_t i = 0; i < w->size(); ++i) {
    (*w)[i] -= static_cast<float>(lr) * update[i];
  }
  for (std::size_t i = 0; i < b->size(); ++i) {
    (*b)[i] -= static_cast<float>(lr) * update[w->size() + i];
  }
}

bool all_finite(std::span<const float> values) noexcept {
  for (float v : values) {
    if (!std::isfinite(v)) return false;
  }
  return true;
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int b = 0; b < 8; ++b) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * b)));
  }
}

void put_f32_vec(std::vector<std::uint8_t>& out,
                 const std::vector<float>& v) {
  put_u64(out, v.size());
  const std::size_t at = out.size();
  out.resize(at + v.size() * sizeof(float));
  if (!v.empty()) std::memcpy(out.data() + at, v.data(), v.size() * 4);
}

std::vector<float> get_f32_vec(codec::wire::Reader& r) {
  const auto n = r.bounded_u64(codec::wire::kMaxElementCount, "sgd vec size");
  // A corrupted count that survives re-sealing must fail typed, not drive
  // a multi-GiB allocation (the ckpt fuzz harness aims exactly here).
  if (n * sizeof(float) > r.remaining()) {
    throw PayloadError("DistSgd: vec size overruns checkpoint body");
  }
  std::vector<float> v(n);
  for (auto& x : v) x = r.f32();
  return v;
}

}  // namespace

DistSgd::DistSgd(DistSgdConfig config, comm::Communicator& comm,
                 std::vector<nn::Model*> replicas)
    : cfg_(config), comm_(comm), replicas_(std::move(replicas)) {
  if (replicas_.size() != comm_.world_size()) {
    throw std::invalid_argument("DistSgd: one replica per rank required");
  }
  layer_indices_ = replicas_[0]->trainable_layers();
  velocity_.resize(layer_indices_.size());
  residual_.assign(comm_.world_size(),
                   std::vector<std::vector<float>>(layer_indices_.size()));
  degraded_.assign(layer_indices_.size(), 0);
  consecutive_failures_.assign(layer_indices_.size(), 0);
}

bool DistSgd::chunked_average(
    std::size_t slot, std::size_t n, const std::vector<compress::Bytes>& send,
    const compress::GradientCompressor& compressor,
    std::vector<float>& averaged) {
  const std::size_t world = comm_.world_size();
  const std::size_t active = comm_.participant_count();
  const std::size_t chunkb = cfg_.chunk_bytes;
  if (chunk_producers_.size() < world) chunk_producers_.resize(world);
  if (chunk_consumers_.size() < world) chunk_consumers_.resize(world);

  // Frame every rank's payload into its chunk grid as one engine batch
  // (the CRC work parallelizes across ranks when a pool is attached).
  std::size_t rounds = 0;
  {
    std::vector<std::function<void()>> jobs;
    for (std::size_t r = 0; r < world; ++r) {
      chunk_consumers_[r].reset();
      if (!comm_.is_participating(r)) continue;
      chunk_producers_[r].reserve_for(compressor.max_payload_bytes(n),
                                      chunkb);
      chunk_producers_[r].prepare(compress::ByteView(send[r]), chunkb);
      rounds = std::max(rounds, chunk_producers_[r].chunk_count());
      jobs.push_back([this, r] {
        for (std::size_t k = 0; k < chunk_producers_[r].chunk_count(); ++k) {
          chunk_producers_[r].frame_chunk(k);
        }
      });
    }
    engine().run_batch(std::move(jobs));
  }

  // Ship round by round; the retry ladder operates per round — a damaged
  // chunk re-sends one round's frames, never the whole payload (one-shot
  // injector events mean the retried round is clean).
  const std::size_t attempts =
      policy_.enabled ? policy_.max_decode_retries + 1 : 1;
  for (std::size_t k = 0; k < rounds; ++k) {
    std::vector<std::span<const std::uint8_t>> frames(world);
    bool any = false;
    for (std::size_t r = 0; r < world; ++r) {
      if (!comm_.is_participating(r)) continue;
      if (k < chunk_producers_[r].chunk_count()) {
        frames[r] = chunk_producers_[r].chunk(k);
        any = true;
      }
    }
    if (!any) break;
    bool round_ok = false;
    for (std::size_t attempt = 0; attempt < attempts && !round_ok;
         ++attempt) {
      std::vector<std::vector<std::uint8_t>> recv;
      comm_.allgatherv_chunks(frames, recv, k);
      try {
        for (std::size_t r = 0; r < world; ++r) {
          if (frames[r].empty()) continue;
          // A failed attempt may have fed some ranks before another's
          // frame threw; chunks_fed > k marks those as done this round.
          if (chunk_consumers_[r].chunks_fed() > k) continue;
          chunk_consumers_[r].feed(compress::ByteView(recv[r]));
        }
        round_ok = true;
      } catch (const PayloadError&) {
        if (!policy_.enabled) throw;
        if (attempt + 1 < attempts) {
          ++comm_.recovery().decode_retries;
          comm_.obs().count("recovery.decode_retries");
          comm_.obs().instant(obs::kMainTrack, "chunk.retry", "recovery");
        }
      }
    }
    if (!round_ok) {
      ++comm_.recovery().decode_failures;
      comm_.obs().count("recovery.decode_failures");
      if (++consecutive_failures_[slot] >= policy_.fallback_after &&
          degraded_[slot] == 0) {
        degraded_[slot] = 1;
        ++comm_.recovery().degraded_layers;
        comm_.obs().count("recovery.degraded_layers");
      }
      return false;
    }
  }

  // Decode the reassembled payloads (bit-identical to the unchunked send
  // bytes) as one engine batch, then accumulate in rank order.
  try {
    std::vector<std::function<void()>> jobs;
    jobs.reserve(active);
    for (std::size_t r = 0; r < world; ++r) {
      if (!comm_.is_participating(r)) continue;
      jobs.push_back([this, &compressor, r, n] {
        auto& buf = decode_bufs_[r];
        compressor.decompress_into(chunk_consumers_[r].payload(), buf);
        if (buf.size() != n) {
          throw PayloadError("DistSgd: decompressed size mismatch");
        }
      });
    }
    engine().run_batch(std::move(jobs));
  } catch (const PayloadError&) {
    if (!policy_.enabled) throw;
    ++comm_.recovery().decode_failures;
    comm_.obs().count("recovery.decode_failures");
    if (++consecutive_failures_[slot] >= policy_.fallback_after &&
        degraded_[slot] == 0) {
      degraded_[slot] = 1;
      ++comm_.recovery().degraded_layers;
      comm_.obs().count("recovery.degraded_layers");
    }
    return false;
  }
  averaged.assign(n, 0.0F);
  for (std::size_t r = 0; r < world; ++r) {
    if (!comm_.is_participating(r)) continue;
    const auto& rec = decode_bufs_[r];
    for (std::size_t i = 0; i < n; ++i) {
      averaged[i] += rec[i] / static_cast<float>(active);
    }
  }
  consecutive_failures_[slot] = 0;
  return true;
}

bool DistSgd::compressed_average(
    std::size_t slot, std::size_t n, const std::vector<compress::Bytes>& send,
    const compress::GradientCompressor& compressor,
    std::vector<float>& averaged) {
  if (cfg_.chunk_bytes > 0) {
    return chunked_average(slot, n, send, compressor, averaged);
  }
  const std::size_t world = comm_.world_size();
  const std::size_t active = comm_.participant_count();

  const std::size_t attempts =
      policy_.enabled ? policy_.max_decode_retries + 1 : 1;
  for (std::size_t attempt = 0; attempt < attempts; ++attempt) {
    std::vector<std::vector<std::uint8_t>> recv;
    comm_.allgatherv(send, recv);
    try {
      // Every rank decodes the same concatenation; decode once — from the
      // *received* stream (sliced by the known send sizes), so transport
      // corruption actually reaches the payload validation layer. The
      // per-rank decodes are independent, so they run as one engine batch
      // (parallel when a pool is attached); accumulation stays on this
      // thread in rank order, keeping the float sum deterministic.
      const compress::ByteView gathered(recv[comm_.first_participant()]);
      std::vector<std::function<void()>> jobs;
      jobs.reserve(active);
      std::size_t off = 0;
      for (std::size_t r = 0; r < world; ++r) {
        if (!comm_.is_participating(r)) continue;
        if (send[r].size() > gathered.size() - off) {
          throw PayloadError("DistSgd: gathered stream truncated");
        }
        const compress::ByteView slice = gathered.subspan(off, send[r].size());
        off += send[r].size();
        jobs.push_back([this, &compressor, slice, r, n] {
          auto& buf = decode_bufs_[r];
          compressor.decompress_into(slice, buf);
          if (buf.size() != n) {
            throw PayloadError("DistSgd: decompressed size mismatch");
          }
        });
      }
      engine().run_batch(std::move(jobs));
      averaged.assign(n, 0.0F);
      for (std::size_t r = 0; r < world; ++r) {
        if (!comm_.is_participating(r)) continue;
        const auto& rec = decode_bufs_[r];
        for (std::size_t i = 0; i < n; ++i) {
          averaged[i] += rec[i] / static_cast<float>(active);
        }
      }
      consecutive_failures_[slot] = 0;
      return true;
    } catch (const PayloadError&) {
      if (!policy_.enabled) throw;
      if (attempt + 1 < attempts) {
        ++comm_.recovery().decode_retries;
        comm_.obs().count("recovery.decode_retries");
        comm_.obs().instant(obs::kMainTrack, "sgd.decode_retry", "recovery");
        continue;  // re-send the same payloads through a fresh collective
      }
      ++comm_.recovery().decode_failures;
      comm_.obs().count("recovery.decode_failures");
      if (++consecutive_failures_[slot] >= policy_.fallback_after &&
          degraded_[slot] == 0) {
        degraded_[slot] = 1;
        ++comm_.recovery().degraded_layers;
        comm_.obs().count("recovery.degraded_layers");
      }
      return false;
    }
  }
  return false;
}

void DistSgd::step(double lr, const compress::GradientCompressor* compressor,
                   tensor::Rng& rng) {
  const std::size_t world = comm_.world_size();
  const std::size_t active = comm_.participant_count();
  const std::size_t slots = layer_indices_.size();
  orig_bytes_ = 0;
  comp_bytes_ = 0;
  const obs::ObsHooks& hooks = comm_.obs();
  hooks.count("sgd.steps");
  auto step_span = hooks.span(obs::kMainTrack, "sgd.step", "sgd");
  compress::CompressionEngine& eng = engine();
  eng.wait_all();  // reap any jobs a previous exceptional step left behind

  // One draw from the step generator seeds every compression job's
  // private stream (CompressionEngine::task_rng). The draw count per step
  // is therefore fixed (1 with a compressor, 0 without) no matter which
  // layers end up degraded, non-finite or evicted — which is what keeps
  // checkpoint/resume and fault/clean runs bit-exact, and what makes the
  // parallel engine's output identical to the serial one.
  const std::uint64_t step_seed = compressor != nullptr ? rng() : 0;

  step_grads_.resize(slots);
  send_payloads_.resize(slots);
  decode_bufs_.resize(world);

  // Phase 1: snapshot every layer's [W|b] gradient and decide its path.
  std::vector<std::size_t> layer_n(slots, 0);
  std::vector<std::uint8_t> use_comp(slots, 0);
  for (std::size_t s = 0; s < slots; ++s) {
    const std::size_t li = layer_indices_[s];
    step_grads_[s].resize(world);
    send_payloads_[s].resize(world);
    bool grads_finite = true;
    for (std::size_t r = 0; r < world; ++r) {
      if (!comm_.is_participating(r)) continue;
      flat_gradient_into(replicas_[r]->layer(li), step_grads_[s][r]);
      layer_n[s] = step_grads_[s][r].size();
      // A non-finite local gradient must not enter the compressor (NaN
      // through quantization is undefined); route it through the raw
      // allreduce so the post-average guard below sees it as NaN and
      // handles it as policy says.
      grads_finite = grads_finite && all_finite(step_grads_[s][r]);
    }
    orig_bytes_ += active * layer_n[s] * sizeof(float);
    use_comp[s] =
        compressor != nullptr && degraded_[s] == 0 && grads_finite ? 1 : 0;
  }

  // Graph build (DESIGN.md §13): one compute task per active (slot, rank)
  // compression and one main-thread exchange+update task per slot, with
  // the exchange depending on the slot's compressions. Task ids are
  // slot * world + rank: fixed by (slot, rank) alone, so eviction or
  // degradation of one layer never shifts another task's Rng stream.
  // Backward-order priorities (higher slot first) mirror the order the
  // gradients become ready in a real backward pass: while the main thread
  // drives slot s's collective + decode, the engine's workers compress
  // slots s-1..0 — the host-side analogue of the paper's
  // compression/communication overlap.
  graph_.clear();
  // Rejoin re-sync (DESIGN.md §14): per-layer compute tasks copy the lead
  // replica's parameters into each rejoining replica through a sealed CKPT
  // mini-frame (validated framing, like a checkpoint restore) and reset
  // the rejoiner's error-feedback residual — a rejoiner starts with an
  // empty compressor memory, exactly like a fresh rank. Each slot's
  // exchange waits on its resync (the exchange both reads the lead's and
  // writes the rejoiner's parameters), so re-sync of later layers
  // overlaps earlier layers' collectives.
  const std::vector<std::size_t> rejoining = comm_.rejoining_ranks();
  const std::size_t lead_rank = comm_.first_participant();
  std::vector<StepGraph::TaskId> resync_ids(slots, 0);
  if (!rejoining.empty()) {
    for (std::size_t s = 0; s < slots; ++s) {
      const std::size_t li = layer_indices_[s];
      resync_ids[s] = graph_.add_compute(
          "resync" + std::to_string(s), static_cast<int>(s),
          [this, li, s, lead_rank, rejoining, compressor, world] {
            auto& src = replicas_[lead_rank]->layer(li);
            codec::ckpt::Bytes body;
            codec::ckpt::put_tensor(body, *src.weight());
            codec::ckpt::put_tensor(body, *src.bias());
            const codec::ckpt::Bytes frame = codec::ckpt::seal_frame(body);
            const auto view = codec::ckpt::open_frame(frame);
            codec::wire::Reader reader(view);
            tensor::Tensor w = codec::ckpt::get_tensor(
                reader, src.weight()->shape(), "resync weight");
            tensor::Tensor b = codec::ckpt::get_tensor(
                reader, src.bias()->shape(), "resync bias");
            for (std::size_t j : rejoining) {
              auto& dst = replicas_[j]->layer(li);
              *dst.weight() = w;
              *dst.bias() = b;
              residual_[j][s].assign(w.size() + b.size(), 0.0F);
              // A rejoiner starts with empty compressor memory: drop any
              // stateful-compressor stream keyed to its (slot, rank).
              if (compressor != nullptr) {
                compressor->reset_stream(
                    static_cast<std::uint64_t>(s) * world + j);
              }
            }
          });
    }
  }
  for (std::size_t s = 0; s < slots; ++s) {
    const std::size_t li = layer_indices_[s];
    const std::size_t n = layer_n[s];
    std::vector<StepGraph::TaskId> comp_ids;
    if (use_comp[s]) {
      for (std::size_t r = 0; r < world; ++r) {
        if (!comm_.is_participating(r)) continue;
        comp_ids.push_back(graph_.add_compute(
            "grad_compress" + std::to_string(s), static_cast<int>(s),
            [this, compressor, step_seed, s, r, n, world] {
              tensor::Rng task_rng = compress::CompressionEngine::task_rng(
                  step_seed, static_cast<std::uint64_t>(s) * world + r);
              auto& res = residual_[r][s];
              const std::vector<float>& grad = step_grads_[s][r];
              // Compress once (with optional error feedback); retries
              // re-send these exact payloads, so the training trajectory
              // is identical to a fault-free run.
              thread_local std::vector<float> to_send;
              thread_local std::vector<float> rec;
              to_send = grad;
              if (cfg_.error_feedback) {
                if (res.size() != n) res.assign(n, 0.0F);
                for (std::size_t i = 0; i < n; ++i) to_send[i] += res[i];
              }
              // Stream id == task id: stateful compressors (EF wrapper,
              // sketch seed counters) key cross-step state by it, so it
              // must be fixed by (slot, rank) alone (DESIGN.md §17).
              compressor->compress_stream_into(
                  static_cast<std::uint64_t>(s) * world + r, to_send,
                  task_rng, send_payloads_[s][r]);
              if (cfg_.error_feedback) {
                compressor->decompress_into(send_payloads_[s][r], rec);
                for (std::size_t i = 0; i < n; ++i) {
                  res[i] = to_send[i] - rec[i];
                }
              }
            }));
      }
    }
    // Exchange + decode + momentum + update for one slot: collectives and
    // weight writes stay on the optimizer thread. Weight updates never
    // touch gradient buffers, so in-flight compression of other layers
    // (each reading its own snapshots) is unaffected.
    const auto exch = graph_.add_main(
        "exchange" + std::to_string(s), static_cast<int>(s),
        [this, compressor, lr, s, li, n, world, active,
         use = use_comp[s]] {
          const obs::ObsHooks& hooks = comm_.obs();
          std::vector<float> averaged(n, 0.0F);
          bool averaged_ok = false;
          if (use) {
            for (std::size_t r = 0; r < world; ++r) {
              if (!comm_.is_participating(r)) continue;
              comp_bytes_ += send_payloads_[s][r].size();
            }
            averaged_ok = compressed_average(s, n, send_payloads_[s],
                                             *compressor, averaged);
            if (!averaged_ok) {
              ++comm_.recovery().fallback_steps;
              hooks.count("recovery.fallback_steps");
              hooks.instant(obs::kMainTrack, "sgd.layer_fallback",
                            "recovery");
              // The raw-gradient fallback below delivers the *full*
              // gradient; a stateful compressor rolls its per-stream
              // state back so the dropped payload's error is not
              // double-counted next step (DESIGN.md §17).
              for (std::size_t r = 0; r < world; ++r) {
                if (!comm_.is_participating(r)) continue;
                compressor->notify_fallback(
                    static_cast<std::uint64_t>(s) * world + r);
              }
            }
          }
          if (!averaged_ok) {
            // Plain ring allreduce of the raw gradients — the primary
            // path when no compressor is attached, and the recovery
            // fallback when decode retries were exhausted (the snapshots
            // are untouched by the compressed attempt, so the fallback
            // reduces the exact local gradients).
            std::vector<std::span<float>> views;
            views.reserve(world);
            for (auto& g : step_grads_[s]) views.push_back(g);
            comm_.allreduce_sum(views);
            const std::size_t lead = comm_.first_participant();
            for (std::size_t i = 0; i < n; ++i) {
              averaged[i] =
                  step_grads_[s][lead][i] / static_cast<float>(active);
            }
            comp_bytes_ += active * n * sizeof(float);
          }

          // Non-finite guard: a CRC-clean payload can still carry NaN/Inf
          // (an upstream arithmetic fault); never let it reach the
          // weights silently.
          if (!all_finite(averaged)) {
            if (policy_.enabled && policy_.skip_nonfinite_steps) {
              ++comm_.recovery().nonfinite_skips;
              hooks.count("recovery.nonfinite_skips");
              return;  // skip this layer's update; momentum untouched
            }
            // StepGraph::run reaps every in-flight job before rethrowing.
            throw NonFiniteError("DistSgd: non-finite averaged gradient");
          }

          auto& vel = velocity_[s];
          if (vel.size() != n) vel.assign(n, 0.0F);
          for (std::size_t i = 0; i < n; ++i) {
            vel[i] = static_cast<float>(cfg_.momentum) * vel[i] + averaged[i];
          }
          for (std::size_t r = 0; r < world; ++r) {
            if (!comm_.is_participating(r) && !comm_.is_rejoining(r)) {
              continue;
            }
            apply_flat_update(replicas_[r]->layer(li), vel, lr);
          }
        },
        /*is_comm=*/true);
    for (const auto c : comp_ids) graph_.depends(exch, c);
    if (!rejoining.empty()) graph_.depends(exch, resync_ids[s]);
  }
  sched_stats_ = graph_.run(eng, hooks);
  hooks.count("sgd.orig_bytes", orig_bytes_);
  hooks.count("sgd.comp_bytes", comp_bytes_);
}

void DistSgd::save_state(std::vector<std::uint8_t>& out) const {
  put_u64(out, velocity_.size());
  for (const auto& v : velocity_) put_f32_vec(out, v);
  put_u64(out, residual_.size());
  for (const auto& per_rank : residual_) {
    put_u64(out, per_rank.size());
    for (const auto& v : per_rank) put_f32_vec(out, v);
  }
  for (auto d : degraded_) out.push_back(d);
  for (auto c : consecutive_failures_) put_u64(out, c);
}

void DistSgd::load_state(codec::wire::Reader& reader) {
  const auto slots = reader.bounded_u64(1 << 20, "sgd velocity slots");
  if (slots != velocity_.size()) {
    throw PayloadError("DistSgd: checkpoint layer count mismatch");
  }
  for (auto& v : velocity_) v = get_f32_vec(reader);
  const auto ranks = reader.bounded_u64(1 << 20, "sgd residual ranks");
  if (ranks != residual_.size()) {
    throw PayloadError("DistSgd: checkpoint world size mismatch");
  }
  for (auto& per_rank : residual_) {
    const auto m = reader.bounded_u64(1 << 20, "sgd residual slots");
    if (m != per_rank.size()) {
      throw PayloadError("DistSgd: checkpoint residual shape mismatch");
    }
    for (auto& v : per_rank) v = get_f32_vec(reader);
  }
  for (auto& d : degraded_) d = reader.u8();
  for (auto& c : consecutive_failures_) {
    c = static_cast<std::uint32_t>(
        reader.bounded_u64(~std::uint32_t{0}, "sgd failure counter"));
  }
}

}  // namespace compso::optim
