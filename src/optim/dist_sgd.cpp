#include "src/optim/dist_sgd.hpp"

#include <cstring>
#include <stdexcept>

namespace compso::optim {
namespace {

/// Flattens a layer's [W | b] gradient into one vector.
std::vector<float> flat_gradient(nn::Layer& layer) {
  auto* wg = layer.weight_grad();
  auto* bg = layer.bias_grad();
  std::vector<float> out(wg->size() + bg->size());
  std::copy(wg->span().begin(), wg->span().end(), out.begin());
  std::copy(bg->span().begin(), bg->span().end(),
            out.begin() + static_cast<std::ptrdiff_t>(wg->size()));
  return out;
}

void apply_flat_update(nn::Layer& layer, std::span<const float> update,
                       double lr) {
  auto* w = layer.weight();
  auto* b = layer.bias();
  for (std::size_t i = 0; i < w->size(); ++i) {
    (*w)[i] -= static_cast<float>(lr) * update[i];
  }
  for (std::size_t i = 0; i < b->size(); ++i) {
    (*b)[i] -= static_cast<float>(lr) * update[w->size() + i];
  }
}

}  // namespace

DistSgd::DistSgd(DistSgdConfig config, comm::Communicator& comm,
                 std::vector<nn::Model*> replicas)
    : cfg_(config), comm_(comm), replicas_(std::move(replicas)) {
  if (replicas_.size() != comm_.world_size()) {
    throw std::invalid_argument("DistSgd: one replica per rank required");
  }
  layer_indices_ = replicas_[0]->trainable_layers();
  velocity_.resize(layer_indices_.size());
  residual_.assign(comm_.world_size(),
                   std::vector<std::vector<float>>(layer_indices_.size()));
}

void DistSgd::step(double lr, const compress::GradientCompressor* compressor,
                   tensor::Rng& rng) {
  const std::size_t world = comm_.world_size();
  orig_bytes_ = 0;
  comp_bytes_ = 0;

  for (std::size_t s = 0; s < layer_indices_.size(); ++s) {
    const std::size_t li = layer_indices_[s];
    std::vector<std::vector<float>> grads(world);
    for (std::size_t r = 0; r < world; ++r) {
      grads[r] = flat_gradient(replicas_[r]->layer(li));
    }
    const std::size_t n = grads[0].size();
    orig_bytes_ += world * n * sizeof(float);

    std::vector<float> averaged(n, 0.0F);
    if (compressor == nullptr) {
      // Plain ring allreduce of the raw gradients.
      std::vector<std::span<float>> views;
      views.reserve(world);
      for (auto& g : grads) views.push_back(g);
      comm_.allreduce_sum(views);
      for (std::size_t i = 0; i < n; ++i) {
        averaged[i] = grads[0][i] / static_cast<float>(world);
      }
      comp_bytes_ += world * n * sizeof(float);
    } else {
      // Compress (with optional error feedback), allgatherv, decompress,
      // average.
      std::vector<std::vector<std::uint8_t>> send(world);
      for (std::size_t r = 0; r < world; ++r) {
        auto& res = residual_[r][s];
        std::vector<float> to_send = grads[r];
        if (cfg_.error_feedback) {
          if (res.size() != n) res.assign(n, 0.0F);
          for (std::size_t i = 0; i < n; ++i) to_send[i] += res[i];
        }
        send[r] = compressor->compress(to_send, rng);
        if (cfg_.error_feedback) {
          const auto rec = compressor->decompress(send[r]);
          for (std::size_t i = 0; i < n; ++i) res[i] = to_send[i] - rec[i];
        }
        comp_bytes_ += send[r].size();
      }
      std::vector<std::vector<std::uint8_t>> recv;
      comm_.allgatherv(send, recv);
      // Every rank decodes the same concatenation; decode once — from the
      // *received* stream (sliced by the known send sizes), so transport
      // corruption actually reaches the payload validation layer.
      const compress::ByteView gathered(recv[0]);
      std::size_t off = 0;
      for (std::size_t r = 0; r < world; ++r) {
        if (send[r].size() > gathered.size() - off) {
          throw PayloadError("DistSgd: gathered stream truncated");
        }
        const auto rec =
            compressor->decompress(gathered.subspan(off, send[r].size()));
        off += send[r].size();
        if (rec.size() != n) {
          throw std::logic_error("DistSgd: decompressed size mismatch");
        }
        for (std::size_t i = 0; i < n; ++i) {
          averaged[i] += rec[i] / static_cast<float>(world);
        }
      }
    }

    // Momentum + identical update on every replica.
    auto& vel = velocity_[s];
    if (vel.size() != n) vel.assign(n, 0.0F);
    for (std::size_t i = 0; i < n; ++i) {
      vel[i] = static_cast<float>(cfg_.momentum) * vel[i] + averaged[i];
    }
    for (std::size_t r = 0; r < world; ++r) {
      apply_flat_update(replicas_[r]->layer(li), vel, lr);
    }
  }
}

}  // namespace compso::optim
