#include "src/optim/dist_sgd.hpp"

#include <cmath>
#include <cstring>
#include <stdexcept>

namespace compso::optim {
namespace {

/// Flattens a layer's [W | b] gradient into one vector.
std::vector<float> flat_gradient(nn::Layer& layer) {
  auto* wg = layer.weight_grad();
  auto* bg = layer.bias_grad();
  std::vector<float> out(wg->size() + bg->size());
  std::copy(wg->span().begin(), wg->span().end(), out.begin());
  std::copy(bg->span().begin(), bg->span().end(),
            out.begin() + static_cast<std::ptrdiff_t>(wg->size()));
  return out;
}

void apply_flat_update(nn::Layer& layer, std::span<const float> update,
                       double lr) {
  auto* w = layer.weight();
  auto* b = layer.bias();
  for (std::size_t i = 0; i < w->size(); ++i) {
    (*w)[i] -= static_cast<float>(lr) * update[i];
  }
  for (std::size_t i = 0; i < b->size(); ++i) {
    (*b)[i] -= static_cast<float>(lr) * update[w->size() + i];
  }
}

bool all_finite(std::span<const float> values) noexcept {
  for (float v : values) {
    if (!std::isfinite(v)) return false;
  }
  return true;
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int b = 0; b < 8; ++b) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * b)));
  }
}

void put_f32_vec(std::vector<std::uint8_t>& out,
                 const std::vector<float>& v) {
  put_u64(out, v.size());
  const std::size_t at = out.size();
  out.resize(at + v.size() * sizeof(float));
  if (!v.empty()) std::memcpy(out.data() + at, v.data(), v.size() * 4);
}

std::vector<float> get_f32_vec(codec::wire::Reader& r) {
  const auto n = r.bounded_u64(codec::wire::kMaxElementCount, "sgd vec size");
  std::vector<float> v(n);
  for (auto& x : v) x = r.f32();
  return v;
}

}  // namespace

DistSgd::DistSgd(DistSgdConfig config, comm::Communicator& comm,
                 std::vector<nn::Model*> replicas)
    : cfg_(config), comm_(comm), replicas_(std::move(replicas)) {
  if (replicas_.size() != comm_.world_size()) {
    throw std::invalid_argument("DistSgd: one replica per rank required");
  }
  layer_indices_ = replicas_[0]->trainable_layers();
  velocity_.resize(layer_indices_.size());
  residual_.assign(comm_.world_size(),
                   std::vector<std::vector<float>>(layer_indices_.size()));
  degraded_.assign(layer_indices_.size(), 0);
  consecutive_failures_.assign(layer_indices_.size(), 0);
}

bool DistSgd::compressed_average(
    std::size_t slot, const std::vector<std::vector<float>>& grads,
    const compress::GradientCompressor& compressor, tensor::Rng& rng,
    std::vector<float>& averaged) {
  const std::size_t world = comm_.world_size();
  const std::size_t active = comm_.active_count();
  const std::size_t n = averaged.size();

  // Compress once per active rank (with optional error feedback); retries
  // re-send these exact payloads, so the Rng stream — and therefore the
  // training trajectory — is identical to a fault-free run.
  std::vector<std::vector<std::uint8_t>> send(world);
  for (std::size_t r = 0; r < world; ++r) {
    if (!comm_.is_active(r)) continue;
    auto& res = residual_[r][slot];
    std::vector<float> to_send = grads[r];
    if (cfg_.error_feedback) {
      if (res.size() != n) res.assign(n, 0.0F);
      for (std::size_t i = 0; i < n; ++i) to_send[i] += res[i];
    }
    send[r] = compressor.compress(to_send, rng);
    if (cfg_.error_feedback) {
      const auto rec = compressor.decompress(send[r]);
      for (std::size_t i = 0; i < n; ++i) res[i] = to_send[i] - rec[i];
    }
    comp_bytes_ += send[r].size();
  }

  const std::size_t attempts =
      policy_.enabled ? policy_.max_decode_retries + 1 : 1;
  for (std::size_t attempt = 0; attempt < attempts; ++attempt) {
    std::vector<std::vector<std::uint8_t>> recv;
    comm_.allgatherv(send, recv);
    try {
      // Every rank decodes the same concatenation; decode once — from the
      // *received* stream (sliced by the known send sizes), so transport
      // corruption actually reaches the payload validation layer.
      std::vector<float> sum(n, 0.0F);
      const compress::ByteView gathered(recv[comm_.first_active_rank()]);
      std::size_t off = 0;
      for (std::size_t r = 0; r < world; ++r) {
        if (!comm_.is_active(r)) continue;
        if (send[r].size() > gathered.size() - off) {
          throw PayloadError("DistSgd: gathered stream truncated");
        }
        const auto rec =
            compressor.decompress(gathered.subspan(off, send[r].size()));
        off += send[r].size();
        if (rec.size() != n) {
          throw PayloadError("DistSgd: decompressed size mismatch");
        }
        for (std::size_t i = 0; i < n; ++i) {
          sum[i] += rec[i] / static_cast<float>(active);
        }
      }
      averaged = std::move(sum);
      consecutive_failures_[slot] = 0;
      return true;
    } catch (const PayloadError&) {
      if (!policy_.enabled) throw;
      if (attempt + 1 < attempts) {
        ++comm_.recovery().decode_retries;
        continue;  // re-send the same payloads through a fresh collective
      }
      ++comm_.recovery().decode_failures;
      if (++consecutive_failures_[slot] >= policy_.fallback_after &&
          degraded_[slot] == 0) {
        degraded_[slot] = 1;
        ++comm_.recovery().degraded_layers;
      }
      return false;
    }
  }
  return false;
}

void DistSgd::step(double lr, const compress::GradientCompressor* compressor,
                   tensor::Rng& rng) {
  const std::size_t world = comm_.world_size();
  const std::size_t active = comm_.active_count();
  orig_bytes_ = 0;
  comp_bytes_ = 0;

  for (std::size_t s = 0; s < layer_indices_.size(); ++s) {
    const std::size_t li = layer_indices_[s];
    std::vector<std::vector<float>> grads(world);
    std::size_t n = 0;
    for (std::size_t r = 0; r < world; ++r) {
      if (!comm_.is_active(r)) continue;
      grads[r] = flat_gradient(replicas_[r]->layer(li));
      n = grads[r].size();
    }
    orig_bytes_ += active * n * sizeof(float);

    std::vector<float> averaged(n, 0.0F);
    // A non-finite local gradient must not enter the compressor (NaN through
    // quantization is undefined); route it through the raw allreduce so the
    // post-average guard below sees it as NaN and handles it as policy says.
    bool grads_finite = true;
    for (std::size_t r = 0; r < world && grads_finite; ++r) {
      if (comm_.is_active(r)) grads_finite = all_finite(grads[r]);
    }
    const bool use_compressor =
        compressor != nullptr && degraded_[s] == 0 && grads_finite;
    bool averaged_ok = false;
    if (use_compressor) {
      averaged_ok = compressed_average(s, grads, *compressor, rng, averaged);
      if (!averaged_ok) ++comm_.recovery().fallback_steps;
    }
    if (!averaged_ok) {
      // Plain ring allreduce of the raw gradients — the primary path when
      // no compressor is attached, and the recovery fallback when decode
      // retries were exhausted (grads are untouched by the compressed
      // attempt, so the fallback reduces the exact local gradients).
      std::vector<std::span<float>> views;
      views.reserve(world);
      for (auto& g : grads) views.push_back(g);
      comm_.allreduce_sum(views);
      const std::size_t lead = comm_.first_active_rank();
      for (std::size_t i = 0; i < n; ++i) {
        averaged[i] = grads[lead][i] / static_cast<float>(active);
      }
      comp_bytes_ += active * n * sizeof(float);
    }

    // Non-finite guard: a CRC-clean payload can still carry NaN/Inf (an
    // upstream arithmetic fault); never let it reach the weights silently.
    if (!all_finite(averaged)) {
      if (policy_.enabled && policy_.skip_nonfinite_steps) {
        ++comm_.recovery().nonfinite_skips;
        continue;  // skip this layer's update; momentum untouched
      }
      throw NonFiniteError("DistSgd: non-finite averaged gradient");
    }

    // Momentum + identical update on every surviving replica.
    auto& vel = velocity_[s];
    if (vel.size() != n) vel.assign(n, 0.0F);
    for (std::size_t i = 0; i < n; ++i) {
      vel[i] = static_cast<float>(cfg_.momentum) * vel[i] + averaged[i];
    }
    for (std::size_t r = 0; r < world; ++r) {
      if (!comm_.is_active(r)) continue;
      apply_flat_update(replicas_[r]->layer(li), vel, lr);
    }
  }
}

void DistSgd::save_state(std::vector<std::uint8_t>& out) const {
  put_u64(out, velocity_.size());
  for (const auto& v : velocity_) put_f32_vec(out, v);
  put_u64(out, residual_.size());
  for (const auto& per_rank : residual_) {
    put_u64(out, per_rank.size());
    for (const auto& v : per_rank) put_f32_vec(out, v);
  }
  for (auto d : degraded_) out.push_back(d);
  for (auto c : consecutive_failures_) put_u64(out, c);
}

void DistSgd::load_state(codec::wire::Reader& reader) {
  const auto slots = reader.bounded_u64(1 << 20, "sgd velocity slots");
  if (slots != velocity_.size()) {
    throw PayloadError("DistSgd: checkpoint layer count mismatch");
  }
  for (auto& v : velocity_) v = get_f32_vec(reader);
  const auto ranks = reader.bounded_u64(1 << 20, "sgd residual ranks");
  if (ranks != residual_.size()) {
    throw PayloadError("DistSgd: checkpoint world size mismatch");
  }
  for (auto& per_rank : residual_) {
    const auto m = reader.bounded_u64(1 << 20, "sgd residual slots");
    if (m != per_rank.size()) {
      throw PayloadError("DistSgd: checkpoint residual shape mismatch");
    }
    for (auto& v : per_rank) v = get_f32_vec(reader);
  }
  for (auto& d : degraded_) d = reader.u8();
  for (auto& c : consecutive_failures_) {
    c = static_cast<std::uint32_t>(
        reader.bounded_u64(~std::uint32_t{0}, "sgd failure counter"));
  }
}

}  // namespace compso::optim
