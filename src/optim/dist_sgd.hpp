#pragma once
// Distributed first-order baseline: data-parallel SGD with momentum, with
// an optional gradient compressor in the CocktailSGD style — each rank
// compresses its local gradient, payloads are all-gathered, every rank
// decompresses and averages. Optional per-rank error feedback compensates
// the compression error locally (the classic EF-SGD mechanism §6 mentions;
// COMPSO itself does not use EF, but CocktailSGD does).
//
// Fault tolerance (see recovery.hpp / DESIGN.md §9): with a RecoveryPolicy
// enabled the step survives corrupted or missing allgatherv entries via
// bounded re-send retries, falls back to the uncompressed allreduce after
// repeated failures (degrading the layer permanently past the threshold),
// skips updates whose averaged gradient went non-finite, and averages over
// the surviving ranks only when the Communicator has evicted a crashed
// rank (gradient-average renormalization).

#include "src/codec/wire.hpp"
#include "src/comm/communicator.hpp"
#include "src/compress/chunked_stream.hpp"
#include "src/compress/compression_engine.hpp"
#include "src/compress/compressor.hpp"
#include "src/nn/model.hpp"
#include "src/optim/recovery.hpp"
#include "src/optim/step_graph.hpp"

#include <vector>

namespace compso::optim {

struct DistSgdConfig {
  double momentum = 0.9;
  bool error_feedback = true;  ///< only used when a compressor is attached.
  /// Chunked streaming transport (DESIGN.md §15): when > 0, each layer's
  /// compressed payloads ship as fixed-size chunk frames over per-round
  /// chunk collectives and reassemble on resumable cursors, with the
  /// retry ladder operating per round. 0 = monolithic allgatherv. Payload
  /// bytes and training trajectories are bit-identical either way.
  std::size_t chunk_bytes = 0;
};

class DistSgd {
 public:
  DistSgd(DistSgdConfig config, comm::Communicator& comm,
          std::vector<nn::Model*> replicas);

  /// One step after every rank ran forward/backward on its local batch.
  void step(double lr, const compress::GradientCompressor* compressor,
            tensor::Rng& rng);

  /// Attaches a parallel compression engine: layer compression jobs run on
  /// its pool while the optimizer thread drives layer i's collective and
  /// decode (compute/communication overlap, §4.4). Pass nullptr to return
  /// to the built-in serial engine. Output is bit-identical either way —
  /// every compression job draws from its own counter-derived Rng stream
  /// (CompressionEngine::task_rng), never from the shared step generator.
  void set_engine(compress::CompressionEngine* engine) noexcept {
    engine_ = engine;
  }

  void set_recovery(const RecoveryPolicy& policy) noexcept {
    policy_ = policy;
  }
  const RecoveryPolicy& recovery_policy() const noexcept { return policy_; }
  /// True if layer slot `s` has been degraded to the uncompressed path.
  bool layer_degraded(std::size_t s) const noexcept {
    return s < degraded_.size() && degraded_[s] != 0;
  }

  std::uint64_t last_original_bytes() const noexcept { return orig_bytes_; }
  std::uint64_t last_compressed_bytes() const noexcept { return comp_bytes_; }

  /// Schedule-shape counters of the last step() (see StepGraph::Stats):
  /// how many collectives ran with compute in flight, how many ran idle.
  const StepGraph::Stats& last_sched_stats() const noexcept {
    return sched_stats_;
  }

  /// Serializes the full optimizer state (velocity, EF residuals, recovery
  /// counters) for checkpointing; restore with load_state. The byte layout
  /// is internal to the checkpoint format (core/checkpoint.hpp).
  void save_state(std::vector<std::uint8_t>& out) const;
  void load_state(codec::wire::Reader& reader);

 private:
  DistSgdConfig cfg_;
  RecoveryPolicy policy_;
  comm::Communicator& comm_;
  std::vector<nn::Model*> replicas_;
  std::vector<std::size_t> layer_indices_;
  // velocity[layer] over flattened [W|b]; residual[rank][layer] for EF.
  std::vector<std::vector<float>> velocity_;
  std::vector<std::vector<std::vector<float>>> residual_;
  std::vector<std::uint8_t> degraded_;        ///< per layer slot.
  std::vector<std::uint32_t> consecutive_failures_;  ///< per layer slot.
  std::uint64_t orig_bytes_ = 0;
  std::uint64_t comp_bytes_ = 0;

  compress::CompressionEngine* engine_ = nullptr;
  compress::CompressionEngine serial_engine_{0};  ///< inline fallback.
  /// The step's task graph + the schedule-shape counters of its last run.
  StepGraph graph_;
  StepGraph::Stats sched_stats_;
  // Per-step workspaces (persistent so steady-state steps reuse capacity):
  // gradient snapshots and payloads indexed [slot][rank], decode buffers
  // indexed [rank].
  std::vector<std::vector<std::vector<float>>> step_grads_;
  std::vector<std::vector<compress::Bytes>> send_payloads_;
  std::vector<std::vector<float>> decode_bufs_;
  // Chunked-transport workspaces (persistent; reused slot after slot —
  // the per-slot exchanges run serially on the optimizer thread).
  std::vector<compress::ChunkedProducer> chunk_producers_;
  std::vector<compress::ChunkedConsumer> chunk_consumers_;

  compress::CompressionEngine& engine() noexcept {
    return engine_ ? *engine_ : serial_engine_;
  }

  /// Exchange + decode of one layer's pre-compressed payloads; returns
  /// false when every retry failed and the caller must use the
  /// uncompressed fallback. Dispatches to chunked_average when
  /// cfg_.chunk_bytes > 0.
  bool compressed_average(std::size_t slot, std::size_t n,
                          const std::vector<compress::Bytes>& send,
                          const compress::GradientCompressor& compressor,
                          std::vector<float>& averaged);

  /// The chunked-transport exchange (DESIGN.md §15): frames each rank's
  /// payload (engine batch), ships per-round chunk collectives with
  /// per-round bounded retries, reassembles on the cursors, and decodes.
  bool chunked_average(std::size_t slot, std::size_t n,
                       const std::vector<compress::Bytes>& send,
                       const compress::GradientCompressor& compressor,
                       std::vector<float>& averaged);
};

}  // namespace compso::optim
