#pragma once
// Distributed first-order baseline: data-parallel SGD with momentum, with
// an optional gradient compressor in the CocktailSGD style — each rank
// compresses its local gradient, payloads are all-gathered, every rank
// decompresses and averages. Optional per-rank error feedback compensates
// the compression error locally (the classic EF-SGD mechanism §6 mentions;
// COMPSO itself does not use EF, but CocktailSGD does).

#include "src/comm/communicator.hpp"
#include "src/compress/compressor.hpp"
#include "src/nn/model.hpp"

#include <vector>

namespace compso::optim {

struct DistSgdConfig {
  double momentum = 0.9;
  bool error_feedback = true;  ///< only used when a compressor is attached.
};

class DistSgd {
 public:
  DistSgd(DistSgdConfig config, comm::Communicator& comm,
          std::vector<nn::Model*> replicas);

  /// One step after every rank ran forward/backward on its local batch.
  void step(double lr, const compress::GradientCompressor* compressor,
            tensor::Rng& rng);

  std::uint64_t last_original_bytes() const noexcept { return orig_bytes_; }
  std::uint64_t last_compressed_bytes() const noexcept { return comp_bytes_; }

 private:
  DistSgdConfig cfg_;
  comm::Communicator& comm_;
  std::vector<nn::Model*> replicas_;
  std::vector<std::size_t> layer_indices_;
  // velocity[layer] over flattened [W|b]; residual[rank][layer] for EF.
  std::vector<std::vector<float>> velocity_;
  std::vector<std::vector<std::vector<float>>> residual_;
  std::uint64_t orig_bytes_ = 0;
  std::uint64_t comp_bytes_ = 0;
};

}  // namespace compso::optim
