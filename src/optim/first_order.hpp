#pragma once
// First-order optimizers (the paper's baselines): SGD with momentum and
// Adam. They operate on a Model's trainable layers in place.

#include "src/nn/model.hpp"

#include <vector>

namespace compso::optim {

/// SGD with (optional) Nesterov-free momentum and weight decay.
class Sgd {
 public:
  explicit Sgd(double momentum = 0.9, double weight_decay = 0.0)
      : momentum_(momentum), weight_decay_(weight_decay) {}

  /// Applies one step with learning rate `lr` using the gradients stored
  /// in the model's layers.
  void step(nn::Model& model, double lr);

 private:
  double momentum_;
  double weight_decay_;
  // Velocity buffers keyed by (layer index, param slot).
  std::vector<std::vector<float>> velocity_;
};

/// Adam (used as the "ADAM" reference in §1; also a sanity baseline).
class Adam {
 public:
  Adam(double beta1 = 0.9, double beta2 = 0.999, double eps = 1e-8)
      : beta1_(beta1), beta2_(beta2), eps_(eps) {}

  void step(nn::Model& model, double lr);

 private:
  double beta1_, beta2_, eps_;
  std::size_t t_ = 0;
  std::vector<std::vector<float>> m_, v_;
};

}  // namespace compso::optim
