#include "src/optim/first_order.hpp"

#include <cmath>

namespace compso::optim {
namespace {

/// Collects (param, grad) pairs for every trainable tensor in the model.
std::vector<std::pair<float*, const float*>> param_grads(
    nn::Model& model, std::vector<std::size_t>& sizes) {
  std::vector<std::pair<float*, const float*>> out;
  sizes.clear();
  for (std::size_t i = 0; i < model.layer_count(); ++i) {
    auto& l = model.layer(i);
    if (!l.has_params()) continue;
    out.emplace_back(l.weight()->data(), l.weight_grad()->data());
    sizes.push_back(l.weight()->size());
    out.emplace_back(l.bias()->data(), l.bias_grad()->data());
    sizes.push_back(l.bias()->size());
  }
  return out;
}

}  // namespace

void Sgd::step(nn::Model& model, double lr) {
  std::vector<std::size_t> sizes;
  const auto pg = param_grads(model, sizes);
  if (velocity_.size() != pg.size()) {
    velocity_.assign(pg.size(), {});
    for (std::size_t p = 0; p < pg.size(); ++p) {
      velocity_[p].assign(sizes[p], 0.0F);
    }
  }
  for (std::size_t p = 0; p < pg.size(); ++p) {
    auto [param, grad] = pg[p];
    auto& vel = velocity_[p];
    for (std::size_t i = 0; i < sizes[p]; ++i) {
      const float g =
          grad[i] + static_cast<float>(weight_decay_) * param[i];
      vel[i] = static_cast<float>(momentum_) * vel[i] + g;
      param[i] -= static_cast<float>(lr) * vel[i];
    }
  }
}

void Adam::step(nn::Model& model, double lr) {
  std::vector<std::size_t> sizes;
  const auto pg = param_grads(model, sizes);
  if (m_.size() != pg.size()) {
    m_.assign(pg.size(), {});
    v_.assign(pg.size(), {});
    for (std::size_t p = 0; p < pg.size(); ++p) {
      m_[p].assign(sizes[p], 0.0F);
      v_[p].assign(sizes[p], 0.0F);
    }
  }
  ++t_;
  const double bc1 = 1.0 - std::pow(beta1_, static_cast<double>(t_));
  const double bc2 = 1.0 - std::pow(beta2_, static_cast<double>(t_));
  for (std::size_t p = 0; p < pg.size(); ++p) {
    auto [param, grad] = pg[p];
    for (std::size_t i = 0; i < sizes[p]; ++i) {
      const double g = grad[i];
      m_[p][i] = static_cast<float>(beta1_ * m_[p][i] + (1.0 - beta1_) * g);
      v_[p][i] =
          static_cast<float>(beta2_ * v_[p][i] + (1.0 - beta2_) * g * g);
      const double mhat = m_[p][i] / bc1;
      const double vhat = v_[p][i] / bc2;
      param[i] -= static_cast<float>(lr * mhat / (std::sqrt(vhat) + eps_));
    }
  }
}

}  // namespace compso::optim
