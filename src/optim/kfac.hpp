#pragma once
// KFAC layer math (paper §2.1, Eq. 1-2).
//
// For each Linear layer, the Fisher block is approximated as
//   F_l = A_{l-1} (x) G_l,   A = E[a a^T],  G = E[g g^T]
// with `a` the (bias-augmented) input activations and `g` the
// pre-activation gradients. The preconditioned gradient is computed from
// the eigendecompositions of A and G:
//   K = Q_G [ (Q_G^T Grad Q_A) / (v_G v_A^T + gamma) ] Q_A^T        (Eq. 2)

#include "src/nn/layer.hpp"
#include "src/tensor/eigen.hpp"

namespace compso::optim {

using tensor::Tensor;

/// Per-layer KFAC state: running-average Kronecker factors and their
/// (periodically refreshed) eigendecompositions.
class KfacLayerState {
 public:
  KfacLayerState(std::size_t in_aug, std::size_t out);

  /// Accumulates the factors from the layer's captured activations /
  /// gradients with decay `stat_decay` (running average, §4.3 reason 2).
  void update_factors(const Tensor& input_aug, const Tensor& grad_out,
                      double stat_decay);

  /// Blends externally computed (e.g. allreduce-averaged) covariance
  /// estimates into the running averages. Used by the distributed path,
  /// where the per-batch covariances are averaged across ranks first.
  void blend_factors(const Tensor& cov_a, const Tensor& cov_g,
                     double stat_decay);

  /// Refreshes the eigendecompositions (the expensive step that the
  /// distributed variant partitions across GPUs).
  void refresh_eigen();

  /// Computes the preconditioned gradient for combined [W | b] gradient
  /// (out, in+1) with Tikhonov damping `gamma`. refresh_eigen() must have
  /// run at least once.
  Tensor precondition(const Tensor& combined_grad, double gamma) const;

  Tensor& factor_a() noexcept { return a_; }
  Tensor& factor_g() noexcept { return g_; }
  const Tensor& factor_a() const noexcept { return a_; }
  const Tensor& factor_g() const noexcept { return g_; }
  bool has_eigen() const noexcept { return has_eigen_; }
  std::size_t updates() const noexcept { return updates_; }

  /// Checkpoint support: the eigendecompositions belong to the factors as
  /// of the *last refresh*, not the current factors, so a bit-exact resume
  /// must restore them verbatim rather than recompute from a_/g_.
  const tensor::EigenDecomposition& eigen_a() const noexcept { return eig_a_; }
  const tensor::EigenDecomposition& eigen_g() const noexcept { return eig_g_; }
  void restore(Tensor a, Tensor g, tensor::EigenDecomposition eig_a,
               tensor::EigenDecomposition eig_g, bool has_eigen,
               std::size_t updates);

 private:
  Tensor a_;  ///< (in+1, in+1)
  Tensor g_;  ///< (out, out)
  tensor::EigenDecomposition eig_a_;
  tensor::EigenDecomposition eig_g_;
  bool has_eigen_ = false;
  std::size_t updates_ = 0;
};

/// Builds the combined (out, in+1) gradient [dW | db] from a Linear layer.
Tensor combined_gradient(nn::Layer& layer);
/// Same, into a caller-owned tensor (reshaped in place when needed) so
/// steady-state steps reuse the buffer instead of allocating per call.
void combined_gradient_into(nn::Layer& layer, Tensor& out);
/// Splits a combined (preconditioned) gradient back into dW / db and
/// applies `param -= lr * K` (with optional momentum handled by caller).
void apply_combined_update(nn::Layer& layer, const Tensor& combined,
                           double lr);

}  // namespace compso::optim
