#pragma once
// Learning-rate schedulers (§4.3): COMPSO keys its iteration-wise adaptive
// compression off the LR schedule — StepLR switches from aggressive to
// conservative bounds at the first LR drop; SmoothLR decays the bounds by
// a factor alpha per stage.

#include <cstddef>
#include <vector>

namespace compso::optim {

class LrScheduler {
 public:
  virtual ~LrScheduler() = default;
  /// Learning rate at iteration t.
  virtual double lr(std::size_t t) const noexcept = 0;
  /// First iteration at which the LR decreases (SIZE_MAX if never).
  virtual std::size_t first_drop() const noexcept = 0;
  virtual bool is_step_schedule() const noexcept = 0;
};

/// StepLR: multiply base LR by `decay` at each milestone iteration.
class StepLr final : public LrScheduler {
 public:
  StepLr(double base_lr, double decay, std::vector<std::size_t> milestones);
  double lr(std::size_t t) const noexcept override;
  std::size_t first_drop() const noexcept override;
  bool is_step_schedule() const noexcept override { return true; }

 private:
  double base_;
  double decay_;
  std::vector<std::size_t> milestones_;
};

/// SmoothLR: linear warmup for `warmup` iterations, then cosine decay to
/// `min_lr` at `total` iterations (the paper's cosine schedule for
/// GPT-neo / BERT).
class SmoothLr final : public LrScheduler {
 public:
  SmoothLr(double base_lr, std::size_t warmup, std::size_t total,
           double min_lr = 0.0);
  double lr(std::size_t t) const noexcept override;
  std::size_t first_drop() const noexcept override { return warmup_; }
  bool is_step_schedule() const noexcept override { return false; }

 private:
  double base_;
  std::size_t warmup_;
  std::size_t total_;
  double min_lr_;
};

}  // namespace compso::optim
