#pragma once
// Recovery policy shared by the distributed optimizers.
//
// The policy decides what happens when a collective delivers damaged or
// numerically unusable data (see DESIGN.md §9 for the full fault → action
// matrix):
//
//  - decode failure (PayloadError)  -> bounded retry: re-send the same
//    payloads through a fresh collective up to `max_decode_retries` times.
//  - retries exhausted              -> fall back to the uncompressed
//    allreduce path for that layer-step; after `fallback_after`
//    consecutive failing steps the layer is degraded (permanently
//    uncompressed) so a rotten link cannot stall training forever.
//  - NaN/Inf after decompression    -> skip that layer's update this step
//    (params and momentum untouched) instead of poisoning the weights.
//
// With `enabled == false` the optimizers keep their fail-fast behaviour:
// PayloadError propagates, and the non-finite guard throws NonFiniteError.
// All counters land in comm::RecoveryStats (Communicator::recovery()).

#include <cstddef>

namespace compso::optim {

struct RecoveryPolicy {
  bool enabled = false;
  /// Re-sends of a collective whose payload failed to decode.
  std::size_t max_decode_retries = 2;
  /// Consecutive failed steps on a layer before it is permanently degraded
  /// to the uncompressed path.
  std::size_t fallback_after = 3;
  /// Skip a layer's update when its averaged gradient is non-finite
  /// (instead of throwing NonFiniteError).
  bool skip_nonfinite_steps = true;
};

}  // namespace compso::optim
