#include "src/optim/kfac.hpp"

#include "src/tensor/matrix_ops.hpp"

#include <stdexcept>

namespace compso::optim {

KfacLayerState::KfacLayerState(std::size_t in_aug, std::size_t out)
    : a_({in_aug, in_aug}), g_({out, out}) {}

void KfacLayerState::update_factors(const Tensor& input_aug,
                                    const Tensor& grad_out,
                                    double stat_decay) {
  if (input_aug.cols() != a_.rows() || grad_out.cols() != g_.rows()) {
    throw std::invalid_argument("KfacLayerState: factor shape mismatch");
  }
  const auto batch = static_cast<double>(input_aug.rows());
  const double blend = updates_ == 0 ? 0.0 : stat_decay;
  // A <- decay * A + (1-decay) * a^T a / B
  tensor::syrk_tn(input_aug, static_cast<float>((1.0 - blend) / batch),
                  static_cast<float>(blend), a_);
  // G <- decay * G + (1-decay) * B * g^T g (mean-loss grads carry 1/B each).
  tensor::syrk_tn(grad_out, static_cast<float>((1.0 - blend) * batch),
                  static_cast<float>(blend), g_);
  ++updates_;
}

void KfacLayerState::blend_factors(const Tensor& cov_a, const Tensor& cov_g,
                                   double stat_decay) {
  if (cov_a.size() != a_.size() || cov_g.size() != g_.size()) {
    throw std::invalid_argument("blend_factors: shape mismatch");
  }
  const double blend = updates_ == 0 ? 0.0 : stat_decay;
  a_.axpby(static_cast<float>(blend), static_cast<float>(1.0 - blend), cov_a);
  g_.axpby(static_cast<float>(blend), static_cast<float>(1.0 - blend), cov_g);
  ++updates_;
}

void KfacLayerState::refresh_eigen() {
  if (updates_ == 0) {
    throw std::logic_error("KfacLayerState: no factor statistics yet");
  }
  eig_a_ = tensor::eigh(a_);
  eig_g_ = tensor::eigh(g_);
  has_eigen_ = true;
}

Tensor KfacLayerState::precondition(const Tensor& combined_grad,
                                    double gamma) const {
  if (!has_eigen_) {
    throw std::logic_error("KfacLayerState: eigendecomposition not ready");
  }
  const std::size_t out = g_.rows();
  const std::size_t in_aug = a_.rows();
  if (combined_grad.rows() != out || combined_grad.cols() != in_aug) {
    throw std::invalid_argument("precondition: gradient shape mismatch");
  }
  // V1 = Q_G^T Grad Q_A
  Tensor tmp, v;
  tensor::gemm_tn(eig_g_.eigenvectors, combined_grad, tmp);  // (out, in_aug)
  tensor::gemm(tmp, eig_a_.eigenvectors, v);                 // (out, in_aug)
  // V2 = V1 / (v_G v_A^T + gamma)
  for (std::size_t i = 0; i < out; ++i) {
    const double vg = eig_g_.eigenvalues[i];
    for (std::size_t j = 0; j < in_aug; ++j) {
      const double denom =
          vg * static_cast<double>(eig_a_.eigenvalues[j]) + gamma;
      v.at(i, j) = static_cast<float>(v.at(i, j) / denom);
    }
  }
  // K = Q_G V2 Q_A^T
  Tensor k;
  tensor::gemm(eig_g_.eigenvectors, v, tmp);
  tensor::gemm_nt(tmp, eig_a_.eigenvectors, k);
  return k;
}

void KfacLayerState::restore(Tensor a, Tensor g,
                             tensor::EigenDecomposition eig_a,
                             tensor::EigenDecomposition eig_g, bool has_eigen,
                             std::size_t updates) {
  if (a.size() != a_.size() || g.size() != g_.size()) {
    throw std::invalid_argument("KfacLayerState::restore: shape mismatch");
  }
  a_ = std::move(a);
  g_ = std::move(g);
  eig_a_ = std::move(eig_a);
  eig_g_ = std::move(eig_g);
  has_eigen_ = has_eigen;
  updates_ = updates;
}

Tensor combined_gradient(nn::Layer& layer) {
  Tensor c;
  combined_gradient_into(layer, c);
  return c;
}

void combined_gradient_into(nn::Layer& layer, Tensor& c) {
  auto* wg = layer.weight_grad();
  auto* bg = layer.bias_grad();
  if (wg == nullptr || bg == nullptr) {
    throw std::invalid_argument("combined_gradient: layer has no params");
  }
  const std::size_t out = wg->rows(), in = wg->cols();
  if (c.rank() != 2 || c.rows() != out || c.cols() != in + 1) {
    c = Tensor({out, in + 1});
  }
  for (std::size_t r = 0; r < out; ++r) {
    for (std::size_t j = 0; j < in; ++j) c.at(r, j) = wg->at(r, j);
    c.at(r, in) = (*bg)[r];
  }
}

void apply_combined_update(nn::Layer& layer, const Tensor& combined,
                           double lr) {
  auto* w = layer.weight();
  auto* b = layer.bias();
  const std::size_t out = w->rows(), in = w->cols();
  if (combined.rows() != out || combined.cols() != in + 1) {
    throw std::invalid_argument("apply_combined_update: shape mismatch");
  }
  for (std::size_t r = 0; r < out; ++r) {
    for (std::size_t j = 0; j < in; ++j) {
      w->at(r, j) -= static_cast<float>(lr) * combined.at(r, j);
    }
    (*b)[r] -= static_cast<float>(lr) * combined.at(r, in);
  }
}

}  // namespace compso::optim
