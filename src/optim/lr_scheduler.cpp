#include "src/optim/lr_scheduler.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numbers>
#include <stdexcept>

namespace compso::optim {

StepLr::StepLr(double base_lr, double decay,
               std::vector<std::size_t> milestones)
    : base_(base_lr), decay_(decay), milestones_(std::move(milestones)) {
  if (base_lr <= 0.0 || decay <= 0.0 || decay >= 1.0) {
    throw std::invalid_argument("StepLr: need base_lr > 0, decay in (0,1)");
  }
  std::sort(milestones_.begin(), milestones_.end());
}

double StepLr::lr(std::size_t t) const noexcept {
  double v = base_;
  for (std::size_t m : milestones_) {
    if (t >= m) v *= decay_;
  }
  return v;
}

std::size_t StepLr::first_drop() const noexcept {
  return milestones_.empty() ? std::numeric_limits<std::size_t>::max()
                             : milestones_.front();
}

SmoothLr::SmoothLr(double base_lr, std::size_t warmup, std::size_t total,
                   double min_lr)
    : base_(base_lr), warmup_(warmup), total_(total), min_lr_(min_lr) {
  if (base_lr <= 0.0 || total == 0 || warmup >= total) {
    throw std::invalid_argument("SmoothLr: need base_lr > 0, warmup < total");
  }
}

double SmoothLr::lr(std::size_t t) const noexcept {
  if (t < warmup_) {
    return base_ * static_cast<double>(t + 1) / static_cast<double>(warmup_);
  }
  const double progress =
      static_cast<double>(std::min(t, total_) - warmup_) /
      static_cast<double>(total_ - warmup_);
  return min_lr_ + (base_ - min_lr_) * 0.5 *
                       (1.0 + std::cos(std::numbers::pi * progress));
}

}  // namespace compso::optim
