#include "src/tensor/synthetic.hpp"

#include <cmath>

namespace compso::tensor {

std::vector<float> synthetic_gradient(std::size_t n, const GradientProfile& p,
                                      Rng& rng) {
  std::vector<float> out(n);
  for (auto& v : out) {
    const float u = rng.uniform();
    if (u < p.near_zero_fraction) {
      v = rng.laplace(p.near_zero_scale);
    } else {
      v = rng.laplace(p.body_scale);
    }
    if (rng.uniform() < p.outlier_fraction) v *= p.outlier_multiplier;
  }
  return out;
}

std::vector<float> synthetic_smooth(std::size_t n, Rng& rng) {
  std::vector<float> out(n);
  // Sum of a few random-phase sinusoids plus a slow random walk.
  const float f1 = rng.uniform(0.001F, 0.01F);
  const float f2 = rng.uniform(0.01F, 0.05F);
  const float ph1 = rng.uniform(0.0F, 6.28F);
  const float ph2 = rng.uniform(0.0F, 6.28F);
  float walk = 0.0F;
  for (std::size_t i = 0; i < n; ++i) {
    walk += rng.normal(0.0F, 0.002F);
    const auto x = static_cast<float>(i);
    out[i] = std::sin(f1 * x + ph1) + 0.3F * std::sin(f2 * x + ph2) + walk;
  }
  return out;
}

}  // namespace compso::tensor
