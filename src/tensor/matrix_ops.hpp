#pragma once
// Dense matrix kernels used by the NN substrate and the KFAC optimizer.
//
// The production kernels (gemm / gemm_tn / gemm_nt / syrk_tn) are lowered
// onto one cache-blocked, packed-panel microkernel (DESIGN.md §11): A and
// B tiles are copied into contiguous panels, an MR x NR register tile
// accumulates over the K panel, and the compiler vectorizes the NR lane
// loop. Output row blocks can additionally run in parallel on a shared
// ThreadPool (set_math_pool) via the deterministic static partitioner —
// every output element keeps its serial accumulation order (k ascending,
// single accumulator), so results are bit-identical at any thread count.
//
// The original naive kernels are retained as *_reference oracles: the
// property tests and the math micro-benchmark compare the blocked engine
// against them (bitwise — same per-element operation sequence).

#include "src/tensor/tensor.hpp"

namespace compso::common {
class ThreadPool;
}

namespace compso::tensor {

/// Attaches (or detaches, with nullptr) the pool the blocked kernels use
/// to parallelize output-row blocks. The pool is shared with whatever
/// else the caller runs (typically the CompressionEngine's pool) — the
/// kernels never spawn threads of their own, and calls that already run
/// on a pool worker execute inline, so layer-level parallelism above is
/// never oversubscribed by gemm-level parallelism below.
void set_math_pool(common::ThreadPool* pool) noexcept;
common::ThreadPool* math_pool() noexcept;

/// RAII helper for benches/tests: attaches a pool, restores the previous
/// one on destruction.
class MathPoolGuard {
 public:
  explicit MathPoolGuard(common::ThreadPool* pool) noexcept
      : prev_(math_pool()) {
    set_math_pool(pool);
  }
  ~MathPoolGuard() { set_math_pool(prev_); }
  MathPoolGuard(const MathPoolGuard&) = delete;
  MathPoolGuard& operator=(const MathPoolGuard&) = delete;

 private:
  common::ThreadPool* prev_;
};

/// C = A * B.  A is (m x k), B is (k x n), C is (m x n).
void gemm(const Tensor& a, const Tensor& b, Tensor& c);

/// C = A^T * B.  A is (k x m), B is (k x n), C is (m x n).
void gemm_tn(const Tensor& a, const Tensor& b, Tensor& c);

/// C = A * B^T.  A is (m x k), B is (n x k), C is (m x n).
void gemm_nt(const Tensor& a, const Tensor& b, Tensor& c);

/// C = alpha * A^T A + beta * C, for A of shape (n x d): the covariance
/// accumulation at the heart of KFAC factor computation (Eq. 1). Only the
/// upper-triangle blocks are computed; the result is mirrored.
void syrk_tn(const Tensor& a, float alpha, float beta, Tensor& c);

/// Naive single-thread reference kernels (the pre-blocking loops), kept
/// as correctness oracles. NOTE: like the blocked kernels, these do NOT
/// skip zero multiplicands — 0 * NaN must stay NaN so non-finite values
/// propagate into the output and the optimizer guards can fire.
void gemm_reference(const Tensor& a, const Tensor& b, Tensor& c);
void gemm_tn_reference(const Tensor& a, const Tensor& b, Tensor& c);
void gemm_nt_reference(const Tensor& a, const Tensor& b, Tensor& c);
void syrk_tn_reference(const Tensor& a, float alpha, float beta, Tensor& c);

/// Returns A * B (allocating).
Tensor matmul(const Tensor& a, const Tensor& b);

/// Returns A^T (allocating).
Tensor transpose(const Tensor& a);

/// y = A x for A (m x n), x (n), y (m).
void gemv(const Tensor& a, std::span<const float> x, std::span<float> y);

/// Adds `value` to the diagonal of square matrix A (Tikhonov damping).
void add_diagonal(Tensor& a, float value);

/// Frobenius inner product <A, B>.
double dot(const Tensor& a, const Tensor& b);

/// Reshapes `t` to (rows x cols), reallocating only when the shape
/// actually differs — scratch-reuse helper for per-step workspaces.
void ensure_shape2(Tensor& t, std::size_t rows, std::size_t cols);

}  // namespace compso::tensor
