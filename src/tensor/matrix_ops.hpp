#pragma once
// Dense matrix kernels used by the NN substrate and the KFAC optimizer.
//
// These are cache-blocked scalar kernels (the compiler vectorizes the inner
// loops); they are not meant to compete with BLAS, only to be correct and
// fast enough for the proxy models.

#include "src/tensor/tensor.hpp"

namespace compso::tensor {

/// C = A * B.  A is (m x k), B is (k x n), C is (m x n).
void gemm(const Tensor& a, const Tensor& b, Tensor& c);

/// C = A^T * B.  A is (k x m), B is (k x n), C is (m x n).
void gemm_tn(const Tensor& a, const Tensor& b, Tensor& c);

/// C = A * B^T.  A is (m x k), B is (n x k), C is (m x n).
void gemm_nt(const Tensor& a, const Tensor& b, Tensor& c);

/// Returns A * B (allocating).
Tensor matmul(const Tensor& a, const Tensor& b);

/// Returns A^T (allocating).
Tensor transpose(const Tensor& a);

/// C = alpha * A^T A + beta * C, for A of shape (n x d): the covariance
/// accumulation at the heart of KFAC factor computation (Eq. 1).
void syrk_tn(const Tensor& a, float alpha, float beta, Tensor& c);

/// y = A x for A (m x n), x (n), y (m).
void gemv(const Tensor& a, std::span<const float> x, std::span<float> y);

/// Adds `value` to the diagonal of square matrix A (Tikhonov damping).
void add_diagonal(Tensor& a, float value);

/// Frobenius inner product <A, B>.
double dot(const Tensor& a, const Tensor& b);

}  // namespace compso::tensor
