#include "src/tensor/matrix_ops.hpp"

#include <stdexcept>

namespace compso::tensor {
namespace {

void check2(const Tensor& t, const char* name) {
  if (t.rank() != 2) {
    throw std::invalid_argument(std::string(name) + ": expected rank-2 tensor");
  }
}

}  // namespace

void gemm(const Tensor& a, const Tensor& b, Tensor& c) {
  check2(a, "gemm A");
  check2(b, "gemm B");
  const std::size_t m = a.rows(), k = a.cols(), n = b.cols();
  if (b.rows() != k) throw std::invalid_argument("gemm: inner dim mismatch");
  if (c.rank() != 2 || c.rows() != m || c.cols() != n) {
    c = Tensor({m, n});
  } else {
    c.fill(0.0F);
  }
  // ikj loop order: streams B rows, accumulates into C rows.
  for (std::size_t i = 0; i < m; ++i) {
    float* crow = c.data() + i * n;
    const float* arow = a.data() + i * k;
    for (std::size_t p = 0; p < k; ++p) {
      const float av = arow[p];
      if (av == 0.0F) continue;
      const float* brow = b.data() + p * n;
      for (std::size_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

void gemm_tn(const Tensor& a, const Tensor& b, Tensor& c) {
  check2(a, "gemm_tn A");
  check2(b, "gemm_tn B");
  const std::size_t k = a.rows(), m = a.cols(), n = b.cols();
  if (b.rows() != k) throw std::invalid_argument("gemm_tn: inner dim mismatch");
  if (c.rank() != 2 || c.rows() != m || c.cols() != n) {
    c = Tensor({m, n});
  } else {
    c.fill(0.0F);
  }
  for (std::size_t p = 0; p < k; ++p) {
    const float* arow = a.data() + p * m;
    const float* brow = b.data() + p * n;
    for (std::size_t i = 0; i < m; ++i) {
      const float av = arow[i];
      if (av == 0.0F) continue;
      float* crow = c.data() + i * n;
      for (std::size_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

void gemm_nt(const Tensor& a, const Tensor& b, Tensor& c) {
  check2(a, "gemm_nt A");
  check2(b, "gemm_nt B");
  const std::size_t m = a.rows(), k = a.cols(), n = b.rows();
  if (b.cols() != k) throw std::invalid_argument("gemm_nt: inner dim mismatch");
  if (c.rank() != 2 || c.rows() != m || c.cols() != n) {
    c = Tensor({m, n});
  } else {
    c.fill(0.0F);
  }
  for (std::size_t i = 0; i < m; ++i) {
    const float* arow = a.data() + i * k;
    float* crow = c.data() + i * n;
    for (std::size_t j = 0; j < n; ++j) {
      const float* brow = b.data() + j * k;
      float acc = 0.0F;
      for (std::size_t p = 0; p < k; ++p) acc += arow[p] * brow[p];
      crow[j] = acc;
    }
  }
}

Tensor matmul(const Tensor& a, const Tensor& b) {
  Tensor c;
  gemm(a, b, c);
  return c;
}

Tensor transpose(const Tensor& a) {
  check2(a, "transpose");
  Tensor t({a.cols(), a.rows()});
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < a.cols(); ++j) t.at(j, i) = a.at(i, j);
  }
  return t;
}

void syrk_tn(const Tensor& a, float alpha, float beta, Tensor& c) {
  check2(a, "syrk_tn A");
  const std::size_t n = a.rows(), d = a.cols();
  if (c.rank() != 2 || c.rows() != d || c.cols() != d) {
    c = Tensor({d, d});
    beta = 0.0F;
  }
  for (auto& v : c.span()) v *= beta;
  for (std::size_t s = 0; s < n; ++s) {
    const float* row = a.data() + s * d;
    for (std::size_t i = 0; i < d; ++i) {
      const float av = alpha * row[i];
      if (av == 0.0F) continue;
      float* crow = c.data() + i * d;
      for (std::size_t j = i; j < d; ++j) crow[j] += av * row[j];
    }
  }
  // Mirror the upper triangle into the lower one.
  for (std::size_t i = 0; i < d; ++i) {
    for (std::size_t j = i + 1; j < d; ++j) c.at(j, i) = c.at(i, j);
  }
}

void gemv(const Tensor& a, std::span<const float> x, std::span<float> y) {
  check2(a, "gemv A");
  const std::size_t m = a.rows(), n = a.cols();
  if (x.size() != n || y.size() != m) {
    throw std::invalid_argument("gemv: shape mismatch");
  }
  for (std::size_t i = 0; i < m; ++i) {
    const float* row = a.data() + i * n;
    float acc = 0.0F;
    for (std::size_t j = 0; j < n; ++j) acc += row[j] * x[j];
    y[i] = acc;
  }
}

void add_diagonal(Tensor& a, float value) {
  check2(a, "add_diagonal");
  const std::size_t n = std::min(a.rows(), a.cols());
  for (std::size_t i = 0; i < n; ++i) a.at(i, i) += value;
}

double dot(const Tensor& a, const Tensor& b) {
  if (a.size() != b.size()) throw std::invalid_argument("dot: size mismatch");
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    acc += static_cast<double>(a[i]) * static_cast<double>(b[i]);
  }
  return acc;
}

}  // namespace compso::tensor
