#include "src/tensor/matrix_ops.hpp"

#include "src/common/thread_pool.hpp"

#include <algorithm>
#include <cmath>
#include <atomic>
#include <cstddef>
#include <stdexcept>
#include <vector>

namespace compso::tensor {
namespace {

void check2(const Tensor& t, const char* name) {
  if (t.rank() != 2) {
    throw std::invalid_argument(std::string(name) + ": expected rank-2 tensor");
  }
}

// The shared math pool (DESIGN.md §11). Plain pointer, set at wiring time
// (benches/tests) before any concurrent use; kernels re-read it per call.
std::atomic<common::ThreadPool*> g_math_pool{nullptr};

// ---------------------------------------------------------------------------
// Blocked packed-panel engine.
//
// Classic three-level blocking (jc -> pc -> ic) with packed panels:
//   NC: columns of B per outer block (B panel: KC x NC, L2-resident),
//   KC: depth of one packed panel pass,
//   MC: rows of C per parallel work unit (multiple of MR),
//   MR x NR: the register tile one microkernel invocation accumulates.
//
// Determinism: the pc loop is serial and ascending, and the microkernel
// loads each C element into a register, extends its accumulation chain
// with k ascending (one fused or unfused multiply-add per k), and stores
// it back. Every output element therefore sees one fixed operation
// sequence regardless of blocking or of which thread computed its row
// block — results are bit-identical at any thread count. The microkernel
// is runtime-dispatched to the widest ISA the host offers (AVX-512+FMA,
// AVX2+FMA, baseline SSE2); the chosen variant is a pure function of the
// host CPU, so within a machine the dispatch is deterministic too. The
// FMA variants round once per multiply-add, so blocked results agree
// with the unfused *_reference oracles to accumulation tolerance, not
// bitwise (the property tests encode exactly that contract).
// ---------------------------------------------------------------------------

thread_local std::vector<float> t_apack;  ///< per-thread A panel scratch.
thread_local std::vector<float> t_bpack;  ///< caller-thread B panel scratch.

/// Operand layouts the packers understand. `trans == false` reads
/// element (i, p) at src[i * ld + p]; `trans == true` reads src[p * ld + i]
/// (i.e. the operand is stored transposed relative to its role).
struct Panel {
  const float* data;
  std::size_t ld;
  bool trans;

  float at(std::size_t i, std::size_t p) const {
    return trans ? data[p * ld + i] : data[i * ld + p];
  }
};

using MicroFn = void (*)(std::size_t kb, const float* ap, const float* bp,
                         float* c, std::size_t ldc);
using MicroEdgeFn = void (*)(std::size_t kb, const float* ap, const float* bp,
                             float* c, std::size_t ldc, std::size_t mr,
                             std::size_t nr, std::size_t gi0, std::size_t gj0,
                             bool triangular);

/// One ISA variant of the engine: register-tile shape, blocking
/// parameters, and the two microkernels.
struct KernelDesc {
  std::size_t mr, nr;  ///< register tile.
  std::size_t mc, kc, nc;  ///< cache blocking (mc is a multiple of mr).
  MicroFn full;
  MicroEdgeFn edge;
};

/// Generic tile body. With UseFma the multiply-add is a single fused
/// rounding (std::fma compiles to one vfmadd when the enclosing function
/// carries the matching target attribute); without it, separate mul+add
/// exactly like the reference loops. Must inline into its ISA-targeted
/// wrapper to inherit the wider instruction set.
template <std::size_t MRv, std::size_t NRv, bool UseFma>
[[gnu::always_inline]] inline void micro_body(std::size_t kb, const float* ap,
                                              const float* bp, float* c,
                                              std::size_t ldc) {
  float acc[MRv][NRv];
  for (std::size_t r = 0; r < MRv; ++r) {
    for (std::size_t j = 0; j < NRv; ++j) acc[r][j] = c[r * ldc + j];
  }
  for (std::size_t p = 0; p < kb; ++p) {
    const float* a = ap + p * MRv;
    const float* b = bp + p * NRv;
    for (std::size_t r = 0; r < MRv; ++r) {
      const float av = a[r];
      for (std::size_t j = 0; j < NRv; ++j) {
        if constexpr (UseFma) {
          acc[r][j] = std::fma(av, b[j], acc[r][j]);
        } else {
          acc[r][j] += av * b[j];
        }
      }
    }
  }
  for (std::size_t r = 0; r < MRv; ++r) {
    for (std::size_t j = 0; j < NRv; ++j) c[r * ldc + j] = acc[r][j];
  }
}

/// Edge tile body: same accumulation chains, bounds-checked load/store.
/// `triangular` drops stores where global column < global row (syrk
/// upper-triangle tiles crossing the diagonal).
template <std::size_t MRv, std::size_t NRv, bool UseFma>
[[gnu::always_inline]] inline void micro_edge_body(
    std::size_t kb, const float* ap, const float* bp, float* c,
    std::size_t ldc, std::size_t mr, std::size_t nr, std::size_t gi0,
    std::size_t gj0, bool triangular) {
  float acc[MRv][NRv];
  for (std::size_t r = 0; r < MRv; ++r) {
    for (std::size_t j = 0; j < NRv; ++j) {
      acc[r][j] = (r < mr && j < nr) ? c[r * ldc + j] : 0.0F;
    }
  }
  for (std::size_t p = 0; p < kb; ++p) {
    const float* a = ap + p * MRv;
    const float* b = bp + p * NRv;
    for (std::size_t r = 0; r < MRv; ++r) {
      const float av = a[r];
      for (std::size_t j = 0; j < NRv; ++j) {
        if constexpr (UseFma) {
          acc[r][j] = std::fma(av, b[j], acc[r][j]);
        } else {
          acc[r][j] += av * b[j];
        }
      }
    }
  }
  for (std::size_t r = 0; r < mr; ++r) {
    for (std::size_t j = 0; j < nr; ++j) {
      if (triangular && gj0 + j < gi0 + r) continue;
      c[r * ldc + j] = acc[r][j];
    }
  }
}

// Baseline (SSE2): 6x8 tile = 12 xmm accumulators, mul+add (no FMA in
// the baseline ISA), bit-identical to the reference loops.
void micro_generic(std::size_t kb, const float* ap, const float* bp, float* c,
                   std::size_t ldc) {
  micro_body<6, 8, false>(kb, ap, bp, c, ldc);
}
void micro_generic_edge(std::size_t kb, const float* ap, const float* bp,
                        float* c, std::size_t ldc, std::size_t mr,
                        std::size_t nr, std::size_t gi0, std::size_t gj0,
                        bool triangular) {
  micro_edge_body<6, 8, false>(kb, ap, bp, c, ldc, mr, nr, gi0, gj0,
                               triangular);
}

// AVX2+FMA: 4x16 tile = 8 ymm accumulators.
[[gnu::target("avx2,fma")]] void micro_avx2(std::size_t kb, const float* ap,
                                            const float* bp, float* c,
                                            std::size_t ldc) {
  micro_body<4, 16, true>(kb, ap, bp, c, ldc);
}
[[gnu::target("avx2,fma")]] void micro_avx2_edge(
    std::size_t kb, const float* ap, const float* bp, float* c,
    std::size_t ldc, std::size_t mr, std::size_t nr, std::size_t gi0,
    std::size_t gj0, bool triangular) {
  micro_edge_body<4, 16, true>(kb, ap, bp, c, ldc, mr, nr, gi0, gj0,
                               triangular);
}

// AVX-512+FMA: 6x32 tile = 12 zmm accumulators.
[[gnu::target("avx512f,fma")]] void micro_avx512(std::size_t kb,
                                                 const float* ap,
                                                 const float* bp, float* c,
                                                 std::size_t ldc) {
  micro_body<6, 32, true>(kb, ap, bp, c, ldc);
}
[[gnu::target("avx512f,fma")]] void micro_avx512_edge(
    std::size_t kb, const float* ap, const float* bp, float* c,
    std::size_t ldc, std::size_t mr, std::size_t nr, std::size_t gi0,
    std::size_t gj0, bool triangular) {
  micro_edge_body<6, 32, true>(kb, ap, bp, c, ldc, mr, nr, gi0, gj0,
                               triangular);
}

/// Picks the widest variant the host supports, once per process. KC is
/// sized so one packed B micropanel (KC x NR floats) stays ~half-L1.
const KernelDesc& pick_kernel() {
  static const KernelDesc desc = [] {
    if (__builtin_cpu_supports("avx512f") && __builtin_cpu_supports("fma")) {
      return KernelDesc{6, 32, 96, 128, 512, micro_avx512, micro_avx512_edge};
    }
    if (__builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma")) {
      return KernelDesc{4, 16, 96, 256, 256, micro_avx2, micro_avx2_edge};
    }
    return KernelDesc{6, 8, 96, 256, 256, micro_generic, micro_generic_edge};
  }();
  return desc;
}

/// Below this flop count the packing overhead dominates: use the naive
/// reference loops instead.
constexpr std::size_t kSmallGemmFlops = 1UL << 15;
/// Minimum per-call flop count before row blocks go to the pool.
constexpr std::size_t kParallelFlops = 1UL << 21;

/// Packs rows [i0, i1) x ks [p0, p1) of A into mr-row micropanels,
/// scaling by alpha (exact identity for alpha == 1). Zero-pads to mr.
void pack_a(const Panel& a, const KernelDesc& kd, std::size_t i0,
            std::size_t i1, std::size_t p0, std::size_t p1, float alpha,
            std::vector<float>& buf) {
  const std::size_t mr = kd.mr;
  const std::size_t kb = p1 - p0;
  const std::size_t mtiles = (i1 - i0 + mr - 1) / mr;
  buf.resize(std::max(buf.size(), mtiles * mr * kb));
  for (std::size_t t = 0; t < mtiles; ++t) {
    float* dst = buf.data() + t * mr * kb;
    const std::size_t ibase = i0 + t * mr;
    for (std::size_t p = 0; p < kb; ++p) {
      for (std::size_t r = 0; r < mr; ++r) {
        const std::size_t i = ibase + r;
        dst[p * mr + r] = i < i1 ? alpha * a.at(i, p0 + p) : 0.0F;
      }
    }
  }
}

/// Packs ks [p0, p1) x cols [j0, j1) of B into nr-column micropanels.
void pack_b(const Panel& b, const KernelDesc& kd, std::size_t p0,
            std::size_t p1, std::size_t j0, std::size_t j1,
            std::vector<float>& buf) {
  const std::size_t nr = kd.nr;
  const std::size_t kb = p1 - p0;
  const std::size_t ntiles = (j1 - j0 + nr - 1) / nr;
  buf.resize(std::max(buf.size(), ntiles * nr * kb));
  for (std::size_t t = 0; t < ntiles; ++t) {
    float* dst = buf.data() + t * nr * kb;
    const std::size_t jbase = j0 + t * nr;
    for (std::size_t p = 0; p < kb; ++p) {
      for (std::size_t c = 0; c < nr; ++c) {
        const std::size_t j = jbase + c;
        // b role: element (p, j) -> at(j, p) under the Panel convention
        // (Panel::at takes (i, p) with i the non-k index).
        dst[p * nr + c] = j < j1 ? b.at(j, p0 + p) : 0.0F;
      }
    }
  }
}

struct BlockArgs {
  Panel a;
  const KernelDesc* kd;
  const float* bpack;  ///< packed B panel for [p0,p1) x [j0,j1).
  float* c;
  std::size_t ldc;
  std::size_t p0, p1, j0, j1;
  float alpha;
  bool triangular;  ///< syrk mode: skip stores below the diagonal.
};

/// Computes C rows [i0, i1) against the packed B panel: packs the A
/// block (per-thread scratch) and sweeps the microkernel grid.
void run_row_block(const BlockArgs& ba, std::size_t i0, std::size_t i1) {
  // syrk: the whole row block lies strictly below the diagonal band.
  if (ba.triangular && ba.j1 <= i0) return;
  const KernelDesc& kd = *ba.kd;
  pack_a(ba.a, kd, i0, i1, ba.p0, ba.p1, ba.alpha, t_apack);
  const std::size_t kb = ba.p1 - ba.p0;
  const std::size_t nb = ba.j1 - ba.j0;
  const std::size_t ntiles = (nb + kd.nr - 1) / kd.nr;
  for (std::size_t it = 0; it * kd.mr < i1 - i0; ++it) {
    const std::size_t gi = i0 + it * kd.mr;
    const std::size_t mr = std::min(kd.mr, i1 - gi);
    const float* ap = t_apack.data() + it * kd.mr * kb;
    for (std::size_t jt = 0; jt < ntiles; ++jt) {
      const std::size_t gj = ba.j0 + jt * kd.nr;
      const std::size_t nr = std::min(kd.nr, ba.j1 - gj);
      if (ba.triangular && gj + nr <= gi) continue;  // fully below diagonal.
      const float* bp = ba.bpack + jt * kd.nr * kb;
      float* ctile = ba.c + gi * ba.ldc + gj;
      if (mr == kd.mr && nr == kd.nr &&
          !(ba.triangular && gj < gi + kd.mr)) {
        kd.full(kb, ap, bp, ctile, ba.ldc);
      } else {
        kd.edge(kb, ap, bp, ctile, ba.ldc, mr, nr, gi, gj, ba.triangular);
      }
    }
  }
}

/// Blocked driver: C(m x n) += alpha * A * B with the given operand
/// layouts. C must already hold its initial values (the accumulation
/// chain continues from them). `triangular` enables the syrk
/// upper-triangle specialization.
void gemm_driver(const Panel& a, const Panel& b, float* c, std::size_t m,
                 std::size_t n, std::size_t k, float alpha, bool triangular) {
  if (m == 0 || n == 0 || k == 0) return;
  const KernelDesc& kd = pick_kernel();
  common::ThreadPool* pool = g_math_pool.load(std::memory_order_acquire);
  const bool parallel = pool != nullptr &&
                        !common::ThreadPool::on_worker_thread() &&
                        m > kd.mc && m * n * k >= kParallelFlops;
  const std::size_t mblocks = (m + kd.mc - 1) / kd.mc;
  for (std::size_t jc = 0; jc < n; jc += kd.nc) {
    const std::size_t j1 = std::min(jc + kd.nc, n);
    for (std::size_t pc = 0; pc < k; pc += kd.kc) {
      const std::size_t p1 = std::min(pc + kd.kc, k);
      pack_b(b, kd, pc, p1, jc, j1, t_bpack);
      BlockArgs ba{a, &kd, t_bpack.data(), c, n, pc, p1, jc, j1, alpha,
                   triangular};
      auto ranges = [&ba, &kd, m](std::size_t b0, std::size_t b1) {
        for (std::size_t ib = b0; ib < b1; ++ib) {
          run_row_block(ba, ib * kd.mc, std::min(ib * kd.mc + kd.mc, m));
        }
      };
      if (parallel) {
        pool->parallel_for_static(mblocks, ranges);
      } else {
        ranges(0, mblocks);
      }
    }
  }
}

std::size_t flops_of(std::size_t m, std::size_t n, std::size_t k) {
  return m * n * k;
}

}  // namespace

void set_math_pool(common::ThreadPool* pool) noexcept {
  g_math_pool.store(pool, std::memory_order_release);
}

common::ThreadPool* math_pool() noexcept {
  return g_math_pool.load(std::memory_order_acquire);
}

void ensure_shape2(Tensor& t, std::size_t rows, std::size_t cols) {
  if (t.rank() != 2 || t.rows() != rows || t.cols() != cols) {
    t = Tensor({rows, cols});
  }
}

// --- naive reference oracles -----------------------------------------------
//
// The pre-blocking loops, retained verbatim minus one bug: the old
// `if (av == 0.0F) continue;` fast-skip silently dropped NaN/Inf
// propagation (0 * NaN must stay NaN so the optimizer's non-finite
// guards fire on poisoned inputs). No kernel skips zero multiplicands.

void gemm_reference(const Tensor& a, const Tensor& b, Tensor& c) {
  check2(a, "gemm A");
  check2(b, "gemm B");
  const std::size_t m = a.rows(), k = a.cols(), n = b.cols();
  if (b.rows() != k) throw std::invalid_argument("gemm: inner dim mismatch");
  if (c.rank() != 2 || c.rows() != m || c.cols() != n) {
    c = Tensor({m, n});
  } else {
    c.fill(0.0F);
  }
  // ikj loop order: streams B rows, accumulates into C rows.
  for (std::size_t i = 0; i < m; ++i) {
    float* crow = c.data() + i * n;
    const float* arow = a.data() + i * k;
    for (std::size_t p = 0; p < k; ++p) {
      const float av = arow[p];
      const float* brow = b.data() + p * n;
      for (std::size_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

void gemm_tn_reference(const Tensor& a, const Tensor& b, Tensor& c) {
  check2(a, "gemm_tn A");
  check2(b, "gemm_tn B");
  const std::size_t k = a.rows(), m = a.cols(), n = b.cols();
  if (b.rows() != k) throw std::invalid_argument("gemm_tn: inner dim mismatch");
  if (c.rank() != 2 || c.rows() != m || c.cols() != n) {
    c = Tensor({m, n});
  } else {
    c.fill(0.0F);
  }
  for (std::size_t p = 0; p < k; ++p) {
    const float* arow = a.data() + p * m;
    const float* brow = b.data() + p * n;
    for (std::size_t i = 0; i < m; ++i) {
      const float av = arow[i];
      float* crow = c.data() + i * n;
      for (std::size_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

void gemm_nt_reference(const Tensor& a, const Tensor& b, Tensor& c) {
  check2(a, "gemm_nt A");
  check2(b, "gemm_nt B");
  const std::size_t m = a.rows(), k = a.cols(), n = b.rows();
  if (b.cols() != k) throw std::invalid_argument("gemm_nt: inner dim mismatch");
  if (c.rank() != 2 || c.rows() != m || c.cols() != n) {
    c = Tensor({m, n});
  } else {
    c.fill(0.0F);
  }
  for (std::size_t i = 0; i < m; ++i) {
    const float* arow = a.data() + i * k;
    float* crow = c.data() + i * n;
    for (std::size_t j = 0; j < n; ++j) {
      const float* brow = b.data() + j * k;
      float acc = 0.0F;
      for (std::size_t p = 0; p < k; ++p) acc += arow[p] * brow[p];
      crow[j] = acc;
    }
  }
}

void syrk_tn_reference(const Tensor& a, float alpha, float beta, Tensor& c) {
  check2(a, "syrk_tn A");
  const std::size_t n = a.rows(), d = a.cols();
  if (c.rank() != 2 || c.rows() != d || c.cols() != d) {
    c = Tensor({d, d});
    beta = 0.0F;
  }
  for (auto& v : c.span()) v *= beta;
  for (std::size_t s = 0; s < n; ++s) {
    const float* row = a.data() + s * d;
    for (std::size_t i = 0; i < d; ++i) {
      const float av = alpha * row[i];
      float* crow = c.data() + i * d;
      for (std::size_t j = i; j < d; ++j) crow[j] += av * row[j];
    }
  }
  // Mirror the upper triangle into the lower one.
  for (std::size_t i = 0; i < d; ++i) {
    for (std::size_t j = i + 1; j < d; ++j) c.at(j, i) = c.at(i, j);
  }
}

// --- blocked production kernels --------------------------------------------

void gemm(const Tensor& a, const Tensor& b, Tensor& c) {
  check2(a, "gemm A");
  check2(b, "gemm B");
  const std::size_t m = a.rows(), k = a.cols(), n = b.cols();
  if (b.rows() != k) throw std::invalid_argument("gemm: inner dim mismatch");
  if (flops_of(m, n, k) < kSmallGemmFlops) {
    gemm_reference(a, b, c);
    return;
  }
  if (c.rank() != 2 || c.rows() != m || c.cols() != n) {
    c = Tensor({m, n});
  } else {
    c.fill(0.0F);
  }
  gemm_driver({a.data(), k, false}, {b.data(), n, true}, c.data(), m, n, k,
              1.0F, false);
}

void gemm_tn(const Tensor& a, const Tensor& b, Tensor& c) {
  check2(a, "gemm_tn A");
  check2(b, "gemm_tn B");
  const std::size_t k = a.rows(), m = a.cols(), n = b.cols();
  if (b.rows() != k) throw std::invalid_argument("gemm_tn: inner dim mismatch");
  if (flops_of(m, n, k) < kSmallGemmFlops) {
    gemm_tn_reference(a, b, c);
    return;
  }
  if (c.rank() != 2 || c.rows() != m || c.cols() != n) {
    c = Tensor({m, n});
  } else {
    c.fill(0.0F);
  }
  gemm_driver({a.data(), m, true}, {b.data(), n, true}, c.data(), m, n, k,
              1.0F, false);
}

void gemm_nt(const Tensor& a, const Tensor& b, Tensor& c) {
  check2(a, "gemm_nt A");
  check2(b, "gemm_nt B");
  const std::size_t m = a.rows(), k = a.cols(), n = b.rows();
  if (b.cols() != k) throw std::invalid_argument("gemm_nt: inner dim mismatch");
  if (flops_of(m, n, k) < kSmallGemmFlops) {
    gemm_nt_reference(a, b, c);
    return;
  }
  if (c.rank() != 2 || c.rows() != m || c.cols() != n) {
    c = Tensor({m, n});
  } else {
    c.fill(0.0F);
  }
  gemm_driver({a.data(), k, false}, {b.data(), k, false}, c.data(), m, n, k,
              1.0F, false);
}

void syrk_tn(const Tensor& a, float alpha, float beta, Tensor& c) {
  check2(a, "syrk_tn A");
  const std::size_t n = a.rows(), d = a.cols();
  if (flops_of(d, d, n) < kSmallGemmFlops) {
    syrk_tn_reference(a, alpha, beta, c);
    return;
  }
  if (c.rank() != 2 || c.rows() != d || c.cols() != d) {
    c = Tensor({d, d});
    beta = 0.0F;
  }
  for (auto& v : c.span()) v *= beta;
  // C_upper += (alpha * A)^T A; alpha folds into the A pack, which matches
  // the reference's `(alpha * row[i]) * row[j]` operation order exactly.
  gemm_driver({a.data(), d, true}, {a.data(), d, true}, c.data(), d, d, n,
              alpha, true);
  for (std::size_t i = 0; i < d; ++i) {
    for (std::size_t j = i + 1; j < d; ++j) c.at(j, i) = c.at(i, j);
  }
}

Tensor matmul(const Tensor& a, const Tensor& b) {
  Tensor c;
  gemm(a, b, c);
  return c;
}

Tensor transpose(const Tensor& a) {
  check2(a, "transpose");
  Tensor t({a.cols(), a.rows()});
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < a.cols(); ++j) t.at(j, i) = a.at(i, j);
  }
  return t;
}

void gemv(const Tensor& a, std::span<const float> x, std::span<float> y) {
  check2(a, "gemv A");
  const std::size_t m = a.rows(), n = a.cols();
  if (x.size() != n || y.size() != m) {
    throw std::invalid_argument("gemv: shape mismatch");
  }
  for (std::size_t i = 0; i < m; ++i) {
    const float* row = a.data() + i * n;
    float acc = 0.0F;
    for (std::size_t j = 0; j < n; ++j) acc += row[j] * x[j];
    y[i] = acc;
  }
}

void add_diagonal(Tensor& a, float value) {
  check2(a, "add_diagonal");
  const std::size_t n = std::min(a.rows(), a.cols());
  for (std::size_t i = 0; i < n; ++i) a.at(i, i) += value;
}

double dot(const Tensor& a, const Tensor& b) {
  if (a.size() != b.size()) throw std::invalid_argument("dot: size mismatch");
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    acc += static_cast<double>(a[i]) * static_cast<double>(b[i]);
  }
  return acc;
}

}  // namespace compso::tensor
