#include "src/tensor/rng.hpp"

#include <bit>
#include <cmath>
#include <numbers>

namespace compso::tensor {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) noexcept {
  x += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t s = seed;
  for (auto& w : state_) w = splitmix64(s);
}

float Rng::uniform(float lo, float hi) noexcept {
  return lo + (hi - lo) * uniform();
}

std::uint64_t Rng::uniform_index(std::uint64_t n) noexcept {
  // Lemire's multiply-shift rejection-free-enough mapping; bias is
  // negligible for the index ranges used here (<< 2^32).
  return static_cast<std::uint64_t>(
      (static_cast<unsigned __int128>((*this)()) * n) >> 64);
}

float Rng::normal() noexcept {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  float u1 = uniform();
  while (u1 <= 1e-12F) u1 = uniform();
  const float u2 = uniform();
  const float r = std::sqrt(-2.0F * std::log(u1));
  const float theta = 2.0F * std::numbers::pi_v<float> * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

float Rng::normal(float mean, float stddev) noexcept {
  return mean + stddev * normal();
}

float Rng::laplace(float b) noexcept {
  const float u = uniform() - 0.5F;
  const float sign = u < 0.0F ? -1.0F : 1.0F;
  return -b * sign * std::log(1.0F - 2.0F * std::fabs(u));
}

void Rng::fill_normal(std::span<float> out, float mean,
                      float stddev) noexcept {
  for (auto& v : out) v = normal(mean, stddev);
}

void Rng::fill_uniform(std::span<float> out, float lo, float hi) noexcept {
  for (auto& v : out) v = uniform(lo, hi);
}

RngState Rng::save_state() const noexcept {
  RngState st;
  for (int i = 0; i < 4; ++i) st.s[static_cast<std::size_t>(i)] = state_[i];
  st.cached_normal_bits = std::bit_cast<std::uint32_t>(cached_normal_);
  st.has_cached_normal = has_cached_normal_;
  return st;
}

void Rng::restore_state(const RngState& state) noexcept {
  for (int i = 0; i < 4; ++i) state_[i] = state.s[static_cast<std::size_t>(i)];
  cached_normal_ = std::bit_cast<float>(state.cached_normal_bits);
  has_cached_normal_ = state.has_cached_normal;
}

Rng Rng::split(std::uint64_t stream) const noexcept {
  // Mix the current state with the stream id to derive a child seed.
  std::uint64_t seed = state_[0] ^ rotl(state_[3], 13) ^
                       (stream * 0xD1342543DE82EF95ULL + 0x2545F4914F6CDD1DULL);
  return Rng(seed);
}

}  // namespace compso::tensor
