#pragma once
// Deterministic, splittable random number generation for the whole library.
//
// All stochastic components (stochastic rounding, synthetic gradients,
// datasets, random sampling in CocktailSGD) draw from Rng so experiments are
// reproducible bit-for-bit from a seed.

#include <array>
#include <cstdint>
#include <span>

namespace compso::tensor {

/// Complete serializable state of an Rng — the xoshiro256** words plus the
/// Box-Muller cache — so a restored generator continues the exact stream
/// (checkpoint/resume must be bit-exact).
struct RngState {
  std::array<std::uint64_t, 4> s{};
  std::uint32_t cached_normal_bits = 0;  ///< float payload, bit-preserved.
  bool has_cached_normal = false;
};

/// xoshiro256** generator seeded via splitmix64. Satisfies
/// std::uniform_random_bit_generator so it plugs into <random> if needed,
/// but the common paths (uniform floats, normals) are provided directly.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~0ULL; }

  /// Next raw 64-bit value. Defined inline: this sits on the per-element
  /// critical path of stochastic rounding, where an out-of-line call per
  /// draw dominates the xoshiro arithmetic itself.
  std::uint64_t operator()() noexcept {
    const std::uint64_t result = rotl_(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl_(state_[3], 45);
    return result;
  }

  /// Uniform float in [0, 1).
  /// 24 high bits -> float in [0, 1) with full float32 mantissa coverage.
  float uniform() noexcept {
    return static_cast<float>((*this)() >> 40) * 0x1.0p-24F;
  }
  /// Uniform float in [lo, hi).
  float uniform(float lo, float hi) noexcept;
  /// Uniform integer in [0, n) for n > 0.
  std::uint64_t uniform_index(std::uint64_t n) noexcept;
  /// Standard normal via Box-Muller (cached second value).
  float normal() noexcept;
  /// Normal with the given mean / stddev.
  float normal(float mean, float stddev) noexcept;
  /// Laplace(0, b): the heavy-tailed shape of KFAC/SGD gradient values.
  float laplace(float b) noexcept;

  /// Fill a span with standard normal values.
  void fill_normal(std::span<float> out, float mean = 0.0F,
                   float stddev = 1.0F) noexcept;
  /// Fill a span with uniform values in [lo, hi).
  void fill_uniform(std::span<float> out, float lo = 0.0F,
                    float hi = 1.0F) noexcept;

  /// Derive an independent child generator (stable for a given stream id).
  Rng split(std::uint64_t stream) const noexcept;

  /// Snapshot / restore the full generator state (checkpoint support).
  RngState save_state() const noexcept;
  void restore_state(const RngState& state) noexcept;

 private:
  static constexpr std::uint64_t rotl_(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4];
  float cached_normal_ = 0.0F;
  bool has_cached_normal_ = false;
};

}  // namespace compso::tensor
