#pragma once
// Symmetric eigendecomposition (cyclic Jacobi) — the kernel KFAC uses to
// invert its Kronecker factors (paper Eq. 2).
//
// The production `eigh` fuses each rotation's row and column updates into
// one pass over two contiguous rows (the symmetric mirror is written back
// afterwards) and accumulates eigenvectors in transposed storage, so every
// inner loop is stride-1 (DESIGN.md §11). The original two-pass rotation
// is retained as `eigh_reference` for the property tests.

#include "src/tensor/tensor.hpp"

namespace compso::tensor {

/// Result of eigendecomposing a symmetric matrix M = Q diag(v) Q^T.
struct EigenDecomposition {
  Tensor eigenvectors;  ///< (n x n), column i is the i-th eigenvector.
  std::vector<float> eigenvalues;  ///< length n, ascending order.
  bool converged = true;  ///< false: sweeps exhausted above tolerance.
  int sweeps_used = 0;    ///< sweeps executed before termination.
};

/// Cyclic-by-rows Jacobi eigendecomposition of a symmetric matrix.
///
/// Converges quadratically; `max_sweeps` bounds work for the small factor
/// matrices (d <= a few hundred) used by KFAC. Off-diagonal mass below
/// `tol * frobenius_norm` terminates early. Non-convergence (all sweeps
/// spent with the off-diagonal mass still above tolerance) is reported
/// through `EigenDecomposition::converged`; callers that cannot tolerate
/// an approximate basis must check it.
EigenDecomposition eigh(const Tensor& m, int max_sweeps = 32,
                        double tol = 1e-10);

/// The pre-fusion implementation (separate row-rotation, column-rotation
/// and Q passes), kept as a correctness oracle. Same contract as `eigh`.
EigenDecomposition eigh_reference(const Tensor& m, int max_sweeps = 32,
                                  double tol = 1e-10);

/// Reconstructs Q diag(v) Q^T from a decomposition (testing / validation).
Tensor eigen_reconstruct(const EigenDecomposition& e);

}  // namespace compso::tensor
