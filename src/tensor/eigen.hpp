#pragma once
// Symmetric eigendecomposition (cyclic Jacobi) — the kernel KFAC uses to
// invert its Kronecker factors (paper Eq. 2).

#include "src/tensor/tensor.hpp"

namespace compso::tensor {

/// Result of eigendecomposing a symmetric matrix M = Q diag(v) Q^T.
struct EigenDecomposition {
  Tensor eigenvectors;         ///< (n x n), column i is the i-th eigenvector.
  std::vector<float> eigenvalues;  ///< length n, ascending order.
};

/// Cyclic Jacobi eigendecomposition of a symmetric matrix.
///
/// Converges quadratically; `max_sweeps` bounds work for the small factor
/// matrices (d <= a few hundred) used by KFAC. Off-diagonal mass below
/// `tol * frobenius_norm` terminates early.
EigenDecomposition eigh(const Tensor& m, int max_sweeps = 32,
                        double tol = 1e-10);

/// Reconstructs Q diag(v) Q^T from a decomposition (testing / validation).
Tensor eigen_reconstruct(const EigenDecomposition& e);

}  // namespace compso::tensor
