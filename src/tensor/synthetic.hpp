#pragma once
// Synthetic gradient-data generators.
//
// Comm / compression-ratio experiments do not need semantically meaningful
// gradients — they need value distributions with the properties §3 and §4.2
// of the paper report for KFAC gradients: concentrated near zero, heavier
// tails and a *wider dynamic range* than SGD gradients. The generators here
// reproduce those shapes deterministically from a seed.

#include "src/tensor/rng.hpp"

#include <cstddef>
#include <vector>

namespace compso::tensor {

/// Parameters of the synthetic gradient mixture:
/// a fraction `near_zero_fraction` of values is drawn from a tight Laplace
/// around zero (the mass the COMPSO filter removes), the rest from a wider
/// Laplace; a small `outlier_fraction` gets an extra range multiplier
/// (KFAC's wide dynamic range, §3 reason 1).
struct GradientProfile {
  float near_zero_fraction = 0.60F;
  float near_zero_scale = 5e-4F;
  float body_scale = 8e-3F;
  float outlier_fraction = 0.002F;
  float outlier_multiplier = 25.0F;

  /// SGD-gradient-like profile: narrower range, less mass at zero.
  static GradientProfile sgd() {
    return {.near_zero_fraction = 0.35F,
            .near_zero_scale = 1e-3F,
            .body_scale = 4e-3F,
            .outlier_fraction = 0.0005F,
            .outlier_multiplier = 6.0F};
  }
  /// KFAC-gradient-like profile (default).
  static GradientProfile kfac() { return {}; }
};

/// Generates `n` gradient values with the given profile.
std::vector<float> synthetic_gradient(std::size_t n, const GradientProfile& p,
                                      Rng& rng);

/// Smoothly-varying "scientific data"-like buffer (used to sanity-check the
/// SZ-style predictor, which was designed for such data).
std::vector<float> synthetic_smooth(std::size_t n, Rng& rng);

}  // namespace compso::tensor
