#pragma once
// Minimal dense FP32 tensor used throughout the library.
//
// Deliberately simple: row-major contiguous storage, shapes up to rank 4.
// All heavy math lives in matrix_ops / eigen; Tensor is a container with
// element-wise conveniences.

#include <atomic>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <span>
#include <string>
#include <vector>

namespace compso::tensor {

/// Row-major dense FP32 tensor.
class Tensor {
 public:
  Tensor() = default;
  /// Construct zero-filled with the given shape.
  explicit Tensor(std::vector<std::size_t> shape);
  Tensor(std::initializer_list<std::size_t> shape)
      : Tensor(std::vector<std::size_t>(shape)) {}

  /// Construct from existing data (size must match product of shape).
  Tensor(std::vector<std::size_t> shape, std::vector<float> data);

  static Tensor zeros(std::vector<std::size_t> shape) {
    return Tensor(std::move(shape));
  }
  static Tensor full(std::vector<std::size_t> shape, float value);
  /// Identity matrix of size n x n.
  static Tensor eye(std::size_t n);

  const std::vector<std::size_t>& shape() const noexcept { return shape_; }
  std::size_t rank() const noexcept { return shape_.size(); }
  std::size_t size() const noexcept { return data_.size(); }
  bool empty() const noexcept { return data_.empty(); }

  /// Number of rows / cols (valid for rank-2 tensors).
  std::size_t rows() const noexcept {
    assert(rank() == 2);
    return shape_[0];
  }
  std::size_t cols() const noexcept {
    assert(rank() == 2);
    return shape_[1];
  }

  float* data() noexcept { return data_.data(); }
  const float* data() const noexcept { return data_.data(); }
  std::span<float> span() noexcept { return {data_.data(), data_.size()}; }
  std::span<const float> span() const noexcept {
    return {data_.data(), data_.size()};
  }

  float& operator[](std::size_t i) noexcept { return data_[i]; }
  float operator[](std::size_t i) const noexcept { return data_[i]; }

  /// 2-D accessors.
  float& at(std::size_t r, std::size_t c) noexcept {
    assert(rank() == 2 && r < shape_[0] && c < shape_[1]);
    return data_[r * shape_[1] + c];
  }
  float at(std::size_t r, std::size_t c) const noexcept {
    assert(rank() == 2 && r < shape_[0] && c < shape_[1]);
    return data_[r * shape_[1] + c];
  }

  /// Reshape in place (total size must be preserved).
  void reshape(std::vector<std::size_t> shape);

  /// Element-wise in-place operations.
  Tensor& operator+=(const Tensor& other);
  Tensor& operator-=(const Tensor& other);
  Tensor& operator*=(float s);
  /// this = alpha * this + beta * other  (same shapes).
  Tensor& axpby(float alpha, float beta, const Tensor& other);
  void fill(float value) noexcept;

  std::string shape_string() const;

  /// Process-wide count of shape-constructing allocations (the explicit
  /// shape / shape+data constructors, including zeros/full/eye). Tests
  /// diff this across steps to assert steady-state code paths reuse
  /// their workspaces instead of re-materialising zero tensors.
  static std::uint64_t allocation_count() noexcept {
    return allocations_.load(std::memory_order_relaxed);
  }

 private:
  static std::atomic<std::uint64_t> allocations_;

  std::vector<std::size_t> shape_;
  std::vector<float> data_;
};

/// Product of a shape vector.
std::size_t shape_size(std::span<const std::size_t> shape) noexcept;

}  // namespace compso::tensor
