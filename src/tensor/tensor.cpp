#include "src/tensor/tensor.hpp"

#include <numeric>
#include <stdexcept>

namespace compso::tensor {

std::size_t shape_size(std::span<const std::size_t> shape) noexcept {
  std::size_t n = 1;
  for (auto d : shape) n *= d;
  return shape.empty() ? 0 : n;
}

std::atomic<std::uint64_t> Tensor::allocations_{0};

Tensor::Tensor(std::vector<std::size_t> shape)
    : shape_(std::move(shape)), data_(shape_size(shape_), 0.0F) {
  allocations_.fetch_add(1, std::memory_order_relaxed);
}

Tensor::Tensor(std::vector<std::size_t> shape, std::vector<float> data)
    : shape_(std::move(shape)), data_(std::move(data)) {
  if (data_.size() != shape_size(shape_)) {
    throw std::invalid_argument("Tensor: data size does not match shape");
  }
  allocations_.fetch_add(1, std::memory_order_relaxed);
}

Tensor Tensor::full(std::vector<std::size_t> shape, float value) {
  Tensor t(std::move(shape));
  t.fill(value);
  return t;
}

Tensor Tensor::eye(std::size_t n) {
  Tensor t({n, n});
  for (std::size_t i = 0; i < n; ++i) t.at(i, i) = 1.0F;
  return t;
}

void Tensor::reshape(std::vector<std::size_t> shape) {
  if (shape_size(shape) != data_.size()) {
    throw std::invalid_argument("Tensor::reshape: size mismatch");
  }
  shape_ = std::move(shape);
}

Tensor& Tensor::operator+=(const Tensor& other) {
  if (other.size() != size()) {
    throw std::invalid_argument("Tensor::operator+=: size mismatch");
  }
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
  return *this;
}

Tensor& Tensor::operator-=(const Tensor& other) {
  if (other.size() != size()) {
    throw std::invalid_argument("Tensor::operator-=: size mismatch");
  }
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= other.data_[i];
  return *this;
}

Tensor& Tensor::operator*=(float s) {
  for (auto& v : data_) v *= s;
  return *this;
}

Tensor& Tensor::axpby(float alpha, float beta, const Tensor& other) {
  if (other.size() != size()) {
    throw std::invalid_argument("Tensor::axpby: size mismatch");
  }
  for (std::size_t i = 0; i < data_.size(); ++i) {
    data_[i] = alpha * data_[i] + beta * other.data_[i];
  }
  return *this;
}

void Tensor::fill(float value) noexcept {
  std::fill(data_.begin(), data_.end(), value);
}

std::string Tensor::shape_string() const {
  std::string s = "[";
  for (std::size_t i = 0; i < shape_.size(); ++i) {
    if (i) s += ", ";
    s += std::to_string(shape_[i]);
  }
  return s + "]";
}

}  // namespace compso::tensor
