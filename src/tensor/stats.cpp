#include "src/tensor/stats.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace compso::tensor {

Extrema extrema(std::span<const float> v) noexcept {
  Extrema e;
  if (v.empty()) return e;
  e.min = e.max = v[0];
  for (float x : v) {
    e.min = std::min(e.min, x);
    e.max = std::max(e.max, x);
  }
  e.abs_max = std::max(std::fabs(e.min), std::fabs(e.max));
  return e;
}

double l2_norm(std::span<const float> v) noexcept {
  double acc = 0.0;
  for (float x : v) acc += static_cast<double>(x) * x;
  return std::sqrt(acc);
}

double mean(std::span<const float> v) noexcept {
  if (v.empty()) return 0.0;
  double acc = 0.0;
  for (float x : v) acc += x;
  return acc / static_cast<double>(v.size());
}

double variance(std::span<const float> v) noexcept {
  if (v.size() < 2) return 0.0;
  const double m = mean(v);
  double acc = 0.0;
  for (float x : v) acc += (x - m) * (x - m);
  return acc / static_cast<double>(v.size());
}

double max_abs_error(std::span<const float> a, std::span<const float> b) {
  if (a.size() != b.size()) {
    throw std::invalid_argument("max_abs_error: size mismatch");
  }
  double m = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    m = std::max(m, std::fabs(static_cast<double>(a[i]) - b[i]));
  }
  return m;
}

double rmse(std::span<const float> a, std::span<const float> b) {
  if (a.size() != b.size()) throw std::invalid_argument("rmse: size mismatch");
  if (a.empty()) return 0.0;
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = static_cast<double>(a[i]) - b[i];
    acc += d * d;
  }
  return std::sqrt(acc / static_cast<double>(a.size()));
}

double psnr(std::span<const float> a, std::span<const float> b) {
  const double e = rmse(a, b);
  const Extrema ex = extrema(a);
  const double range = static_cast<double>(ex.max) - ex.min;
  if (e <= 0.0) return 999.0;  // lossless
  if (range <= 0.0) return 0.0;
  return 20.0 * std::log10(range / e);
}

std::size_t Histogram::total() const noexcept {
  std::size_t n = 0;
  for (auto c : counts) n += c;
  return n;
}

double Histogram::density(std::size_t i) const noexcept {
  const std::size_t n = total();
  if (n == 0 || counts.empty() || hi <= lo) return 0.0;
  const double width = (hi - lo) / static_cast<double>(counts.size());
  return static_cast<double>(counts[i]) / (static_cast<double>(n) * width);
}

double Histogram::bucket_center(std::size_t i) const noexcept {
  const double width = (hi - lo) / static_cast<double>(counts.size());
  return lo + width * (static_cast<double>(i) + 0.5);
}

Histogram histogram(std::span<const float> v, double lo, double hi,
                    std::size_t bins) {
  if (bins == 0 || hi <= lo) {
    throw std::invalid_argument("histogram: bad range or bins");
  }
  Histogram h;
  h.lo = lo;
  h.hi = hi;
  h.counts.assign(bins, 0);
  const double scale = static_cast<double>(bins) / (hi - lo);
  for (float x : v) {
    auto idx = static_cast<long>((static_cast<double>(x) - lo) * scale);
    idx = std::clamp(idx, 0L, static_cast<long>(bins) - 1);
    ++h.counts[static_cast<std::size_t>(idx)];
  }
  return h;
}

double kurtosis(std::span<const float> v) noexcept {
  if (v.size() < 2) return 0.0;
  const double m = mean(v);
  double m2 = 0.0, m4 = 0.0;
  for (float x : v) {
    const double d = x - m;
    m2 += d * d;
    m4 += d * d * d * d;
  }
  m2 /= static_cast<double>(v.size());
  m4 /= static_cast<double>(v.size());
  if (m2 <= 0.0) return 0.0;
  return m4 / (m2 * m2);
}

}  // namespace compso::tensor
