#include "src/tensor/eigen.hpp"

#include "src/tensor/matrix_ops.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace compso::tensor {

EigenDecomposition eigh(const Tensor& m, int max_sweeps, double tol) {
  if (m.rank() != 2 || m.rows() != m.cols()) {
    throw std::invalid_argument("eigh: expected square matrix");
  }
  const std::size_t n = m.rows();
  // Work in double for numerical robustness; factor matrices are small.
  std::vector<double> a(n * n);
  for (std::size_t i = 0; i < n * n; ++i) a[i] = m.data()[i];
  // Symmetrize defensively (running-average factors can drift slightly).
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const double avg = 0.5 * (a[i * n + j] + a[j * n + i]);
      a[i * n + j] = a[j * n + i] = avg;
    }
  }
  std::vector<double> q(n * n, 0.0);
  for (std::size_t i = 0; i < n; ++i) q[i * n + i] = 1.0;

  double fro = 0.0;
  for (double v : a) fro += v * v;
  fro = std::sqrt(fro);
  const double stop = tol * std::max(fro, 1e-300);

  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    double off = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = i + 1; j < n; ++j) off += a[i * n + j] * a[i * n + j];
    }
    if (std::sqrt(2.0 * off) <= stop) break;

    for (std::size_t p = 0; p + 1 < n; ++p) {
      for (std::size_t r = p + 1; r < n; ++r) {
        const double apq = a[p * n + r];
        if (std::fabs(apq) <= 1e-300) continue;
        const double app = a[p * n + p];
        const double aqq = a[r * n + r];
        const double theta = (aqq - app) / (2.0 * apq);
        const double t = (theta >= 0.0 ? 1.0 : -1.0) /
                         (std::fabs(theta) + std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;
        // Rotate rows/cols p and r of A.
        for (std::size_t k = 0; k < n; ++k) {
          const double akp = a[k * n + p];
          const double akq = a[k * n + r];
          a[k * n + p] = c * akp - s * akq;
          a[k * n + r] = s * akp + c * akq;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const double apk = a[p * n + k];
          const double aqk = a[r * n + k];
          a[p * n + k] = c * apk - s * aqk;
          a[r * n + k] = s * apk + c * aqk;
        }
        // Accumulate rotations into Q.
        for (std::size_t k = 0; k < n; ++k) {
          const double qkp = q[k * n + p];
          const double qkq = q[k * n + r];
          q[k * n + p] = c * qkp - s * qkq;
          q[k * n + r] = s * qkp + c * qkq;
        }
      }
    }
  }

  // Sort eigenpairs ascending by eigenvalue.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t x, std::size_t y) {
    return a[x * n + x] < a[y * n + y];
  });

  EigenDecomposition out;
  out.eigenvalues.resize(n);
  out.eigenvectors = Tensor({n, n});
  for (std::size_t col = 0; col < n; ++col) {
    const std::size_t src = order[col];
    out.eigenvalues[col] = static_cast<float>(a[src * n + src]);
    for (std::size_t rowi = 0; rowi < n; ++rowi) {
      out.eigenvectors.at(rowi, col) = static_cast<float>(q[rowi * n + src]);
    }
  }
  return out;
}

Tensor eigen_reconstruct(const EigenDecomposition& e) {
  const std::size_t n = e.eigenvalues.size();
  Tensor scaled({n, n});
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      scaled.at(i, j) = e.eigenvectors.at(i, j) * e.eigenvalues[j];
    }
  }
  Tensor out;
  gemm_nt(scaled, e.eigenvectors, out);
  return out;
}

}  // namespace compso::tensor
