#include "src/tensor/eigen.hpp"

#include "src/tensor/matrix_ops.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace compso::tensor {
namespace {

/// Floor applied to the Frobenius norm before scaling the convergence
/// tolerance: an (effectively) all-zero matrix must terminate on the
/// first off-diagonal check instead of producing a zero threshold that
/// no residual can ever satisfy.
constexpr double kFrobeniusNormFloor = 1e-300;

/// Off-diagonal entries at or below this magnitude are treated as
/// already annihilated. At this scale the rotation angle computation
/// divides by a subnormal and produces garbage; skipping is exact for
/// any representable accumulation.
constexpr double kNegligibleOffDiagonal = 1e-300;

/// Copies `m` into double storage and symmetrizes it (running-average
/// factors can drift slightly off symmetric).
std::vector<double> load_symmetric(const Tensor& m, std::size_t n) {
  std::vector<double> a(n * n);
  for (std::size_t i = 0; i < n * n; ++i) a[i] = m.data()[i];
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const double avg = 0.5 * (a[i * n + j] + a[j * n + i]);
      a[i * n + j] = a[j * n + i] = avg;
    }
  }
  return a;
}

double frobenius(const std::vector<double>& a) {
  double fro = 0.0;
  for (double v : a) fro += v * v;
  return std::sqrt(fro);
}

double off_diagonal_mass(const std::vector<double>& a, std::size_t n) {
  double off = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) off += a[i * n + j] * a[i * n + j];
  }
  return std::sqrt(2.0 * off);
}

/// Sorts eigenpairs ascending and materializes the result.
/// `q_transposed` selects whether q holds eigenvectors in rows (the
/// fused kernel) or in columns (the reference kernel).
EigenDecomposition finalize(const std::vector<double>& a,
                            const std::vector<double>& q, std::size_t n,
                            bool q_transposed, bool converged,
                            int sweeps_used) {
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t x, std::size_t y) {
    return a[x * n + x] < a[y * n + y];
  });

  EigenDecomposition out;
  out.converged = converged;
  out.sweeps_used = sweeps_used;
  out.eigenvalues.resize(n);
  out.eigenvectors = Tensor({n, n});
  for (std::size_t col = 0; col < n; ++col) {
    const std::size_t src = order[col];
    out.eigenvalues[col] = static_cast<float>(a[src * n + src]);
    for (std::size_t rowi = 0; rowi < n; ++rowi) {
      const double v = q_transposed ? q[src * n + rowi] : q[rowi * n + src];
      out.eigenvectors.at(rowi, col) = static_cast<float>(v);
    }
  }
  return out;
}

void check_square(const Tensor& m) {
  if (m.rank() != 2 || m.rows() != m.cols()) {
    throw std::invalid_argument("eigh: expected square matrix");
  }
}

}  // namespace

EigenDecomposition eigh(const Tensor& m, int max_sweeps, double tol) {
  check_square(m);
  const std::size_t n = m.rows();
  std::vector<double> a = load_symmetric(m, n);
  // Q is stored TRANSPOSED: qt row i holds eigenvector-accumulator
  // column i, so the rotation below touches two contiguous rows.
  std::vector<double> qt(n * n, 0.0);
  for (std::size_t i = 0; i < n; ++i) qt[i * n + i] = 1.0;

  const double stop = tol * std::max(frobenius(a), kFrobeniusNormFloor);

  bool converged = false;
  int sweeps_used = 0;
  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    if (off_diagonal_mass(a, n) <= stop) {
      converged = true;
      break;
    }
    ++sweeps_used;

    // Cyclic-by-rows sweep. Each rotation (p, r) is applied in ONE pass
    // over rows p and r (both contiguous): because A is symmetric, the
    // two-sided update of off-diagonal entries reduces to the same 2x2
    // rotation applied along the rows, with the diagonal corrected in
    // closed form (app' = app - t*apq, aqq' = aqq + t*apq) and the
    // mirror columns copied from the updated rows afterwards. This
    // replaces the reference kernel's three strided passes (column
    // rotation, row rotation, Q-column rotation) with three stride-1
    // row updates.
    for (std::size_t p = 0; p + 1 < n; ++p) {
      double* rowp = a.data() + p * n;
      for (std::size_t r = p + 1; r < n; ++r) {
        const double apq = rowp[r];
        if (std::fabs(apq) <= kNegligibleOffDiagonal) continue;
        double* rowr = a.data() + r * n;
        const double app = rowp[p];
        const double aqq = rowr[r];
        const double theta = (aqq - app) / (2.0 * apq);
        const double t = (theta >= 0.0 ? 1.0 : -1.0) /
                         (std::fabs(theta) + std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;
        for (std::size_t k = 0; k < n; ++k) {
          const double akp = rowp[k];
          const double akq = rowr[k];
          rowp[k] = c * akp - s * akq;
          rowr[k] = s * akp + c * akq;
        }
        // Exact closed-form entries the row pass cannot produce alone.
        rowp[p] = app - t * apq;
        rowr[r] = aqq + t * apq;
        rowp[r] = 0.0;
        rowr[p] = 0.0;
        // Mirror the updated rows into columns p and r.
        for (std::size_t k = 0; k < n; ++k) {
          if (k == p || k == r) continue;
          a[k * n + p] = rowp[k];
          a[k * n + r] = rowr[k];
        }
        // Accumulate the rotation into Q (transposed: rows p and r).
        double* qp = qt.data() + p * n;
        double* qr = qt.data() + r * n;
        for (std::size_t k = 0; k < n; ++k) {
          const double qkp = qp[k];
          const double qkq = qr[k];
          qp[k] = c * qkp - s * qkq;
          qr[k] = s * qkp + c * qkq;
        }
      }
    }
  }
  if (!converged) converged = off_diagonal_mass(a, n) <= stop;

  return finalize(a, qt, n, /*q_transposed=*/true, converged, sweeps_used);
}

EigenDecomposition eigh_reference(const Tensor& m, int max_sweeps,
                                  double tol) {
  check_square(m);
  const std::size_t n = m.rows();
  std::vector<double> a = load_symmetric(m, n);
  std::vector<double> q(n * n, 0.0);
  for (std::size_t i = 0; i < n; ++i) q[i * n + i] = 1.0;

  const double stop = tol * std::max(frobenius(a), kFrobeniusNormFloor);

  bool converged = false;
  int sweeps_used = 0;
  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    if (off_diagonal_mass(a, n) <= stop) {
      converged = true;
      break;
    }
    ++sweeps_used;

    for (std::size_t p = 0; p + 1 < n; ++p) {
      for (std::size_t r = p + 1; r < n; ++r) {
        const double apq = a[p * n + r];
        if (std::fabs(apq) <= kNegligibleOffDiagonal) continue;
        const double app = a[p * n + p];
        const double aqq = a[r * n + r];
        const double theta = (aqq - app) / (2.0 * apq);
        const double t = (theta >= 0.0 ? 1.0 : -1.0) /
                         (std::fabs(theta) + std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;
        // Rotate rows/cols p and r of A.
        for (std::size_t k = 0; k < n; ++k) {
          const double akp = a[k * n + p];
          const double akq = a[k * n + r];
          a[k * n + p] = c * akp - s * akq;
          a[k * n + r] = s * akp + c * akq;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const double apk = a[p * n + k];
          const double aqk = a[r * n + k];
          a[p * n + k] = c * apk - s * aqk;
          a[r * n + k] = s * apk + c * aqk;
        }
        // Accumulate rotations into Q.
        for (std::size_t k = 0; k < n; ++k) {
          const double qkp = q[k * n + p];
          const double qkq = q[k * n + r];
          q[k * n + p] = c * qkp - s * qkq;
          q[k * n + r] = s * qkp + c * qkq;
        }
      }
    }
  }
  if (!converged) converged = off_diagonal_mass(a, n) <= stop;

  return finalize(a, q, n, /*q_transposed=*/false, converged, sweeps_used);
}

Tensor eigen_reconstruct(const EigenDecomposition& e) {
  const std::size_t n = e.eigenvalues.size();
  Tensor scaled({n, n});
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      scaled.at(i, j) = e.eigenvectors.at(i, j) * e.eigenvalues[j];
    }
  }
  Tensor out;
  gemm_nt(scaled, e.eigenvectors, out);
  return out;
}

}  // namespace compso::tensor
