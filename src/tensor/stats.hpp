#pragma once
// Statistics helpers: error metrics (L2, PSNR) and histograms used by the
// rounding-method analysis (paper §4.2, Fig. 5) and by tests.

#include <cstddef>
#include <span>
#include <vector>

namespace compso::tensor {

/// min / max / absolute-max of a buffer. The abs-max drives Eq. 3's
/// normalization.
struct Extrema {
  float min = 0.0F;
  float max = 0.0F;
  float abs_max = 0.0F;
};

Extrema extrema(std::span<const float> v) noexcept;

double l2_norm(std::span<const float> v) noexcept;
double mean(std::span<const float> v) noexcept;
double variance(std::span<const float> v) noexcept;
/// Max |a[i] - b[i]|.
double max_abs_error(std::span<const float> a, std::span<const float> b);
/// Root-mean-square error between two equal-length buffers.
double rmse(std::span<const float> a, std::span<const float> b);
/// Peak signal-to-noise ratio in dB, using a's value range as peak.
double psnr(std::span<const float> a, std::span<const float> b);

/// Fixed-range histogram with `bins` equal-width buckets over [lo, hi];
/// out-of-range samples are clamped into the edge buckets.
struct Histogram {
  double lo = 0.0;
  double hi = 0.0;
  std::vector<std::size_t> counts;

  std::size_t total() const noexcept;
  /// Normalized density for bucket i (integrates to ~1 over [lo, hi]).
  double density(std::size_t i) const noexcept;
  double bucket_center(std::size_t i) const noexcept;
};

Histogram histogram(std::span<const float> v, double lo, double hi,
                    std::size_t bins);

/// Skewness-free shape diagnostics used to classify error distributions:
/// a uniform distribution on [-e, e] has kurtosis 1.8; a symmetric
/// triangular distribution has kurtosis 2.4.
double kurtosis(std::span<const float> v) noexcept;

}  // namespace compso::tensor
