#pragma once
// Deterministic, seeded fault injection for the simulated cluster.
//
// A FaultPlan is a list of (iteration, rank, kind) events; a FaultInjector
// owns a plan plus a seeded Rng and hands faults to the Communicator at
// well-defined points:
//
//  - kCorruptPayload   mutate rank r's byte chunk inside the next byte
//                      collective of the iteration (allgatherv entry, or the
//                      delivered broadcast_bytes copy when r is the root).
//  - kDropEntry        rank r's allgatherv contribution vanishes in flight.
//  - kTruncateEntry    rank r's allgatherv contribution loses its tail.
//  - kStraggler        rank r's SimClocks clock jumps forward by slowdown_s
//                      at the start of the iteration, delaying every
//                      synchronizing collective that follows.
//  - kCrash            rank r dies at the iteration start: it stops
//                      producing heartbeats and stops arriving at the step
//                      barrier. Detection and eviction happen through the
//                      membership layer's heartbeat ladder (membership.hpp)
//                      — the plan is never consulted as an oracle.
//  - kSilence          rank r keeps computing but its heartbeats are lost
//                      for `duration` iterations (a control-plane
//                      partition). Short silences are invisible; long ones
//                      drive the suspicion ladder.
//  - kRecover          a crashed rank comes back online: it heartbeats
//                      again and the membership layer readmits it through
//                      the rejoin/resync ladder.
//  - kNanGradient      rank r's local gradient is poisoned with NaNs before
//                      the optimizer step (consumed by the training loop,
//                      not the Communicator) — exercises the non-finite
//                      guard and the step-skip / bound-tightening policies.
//
// Events are one-shot: each fires at most once, so a bounded retry of the
// same collective sees clean data — exactly the transient-fault model the
// recovery policies are written against. kCrash / kSilence / kRecover are
// one-shot *edges* into the persistent physical-health state the
// membership layer keeps; none of them consumes the injector's RNG, so
// they are safe across checkpoint resume (unlike kCorruptPayload, whose
// damage bytes depend on unreplayed RNG state).
//
// Payload corruption defaults to flipping a random bit inside the first 16
// bytes of the chunk (guaranteed to trip the wire-format magic/CRC layer).
// Callers that want realistic whole-payload damage install the PR-1 fuzz
// mutator via set_mutator (see compress::mutate_payload); comm stays
// dependency-free of the compress layer.

#include "src/tensor/rng.hpp"

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

namespace compso::comm {

enum class FaultKind : std::uint8_t {
  kCorruptPayload,
  kDropEntry,
  kTruncateEntry,
  kStraggler,
  kCrash,
  kNanGradient,
  kSilence,
  kRecover,
};

const char* to_string(FaultKind kind) noexcept;

/// Sentinel chunk index: the event targets the whole payload (the v1
/// path), not an individual chunk of a chunked stream.
inline constexpr std::size_t kNoChunk = ~std::size_t{0};

struct FaultEvent {
  std::size_t iteration = 0;
  std::size_t rank = 0;
  FaultKind kind = FaultKind::kCorruptPayload;
  double slowdown_s = 0.0;    ///< kStraggler only: simulated-clock delay.
  std::size_t duration = 0;   ///< kSilence only: iterations without heartbeat.
  /// Chunk-granular faults (DESIGN.md §15): when != kNoChunk, the event
  /// targets chunk round `chunk` of rank's chunked collective and is
  /// consumed by take_chunk, never by the whole-payload take().
  std::size_t chunk = kNoChunk;
};

/// A deterministic schedule of fault events. Build explicitly with the
/// fluent adders, or sample a random drill with FaultPlan::random.
class FaultPlan {
 public:
  FaultPlan() = default;

  FaultPlan& add(FaultEvent event);
  FaultPlan& corrupt(std::size_t iteration, std::size_t rank);
  FaultPlan& drop(std::size_t iteration, std::size_t rank);
  FaultPlan& truncate(std::size_t iteration, std::size_t rank);
  FaultPlan& straggler(std::size_t iteration, std::size_t rank,
                       double slowdown_s);
  FaultPlan& crash(std::size_t iteration, std::size_t rank);
  FaultPlan& nan_gradient(std::size_t iteration, std::size_t rank);
  /// Suppresses rank's heartbeats for iterations [iteration, iteration +
  /// duration) while it keeps computing (control-plane partition).
  FaultPlan& silence(std::size_t iteration, std::size_t rank,
                     std::size_t duration);
  /// Brings a crashed rank back online at `iteration`; the membership layer
  /// sees its heartbeats again and readmits it through the rejoin ladder.
  FaultPlan& recover(std::size_t iteration, std::size_t rank);

  /// Chunk-granular transient faults: damage lands on chunk round `chunk`
  /// of rank's chunked collective only (consumed via take_chunk), leaving
  /// every other chunk of the same payload clean — the model the per-chunk
  /// retry ladder is written against.
  FaultPlan& corrupt_chunk(std::size_t iteration, std::size_t rank,
                           std::size_t chunk);
  FaultPlan& drop_chunk(std::size_t iteration, std::size_t rank,
                        std::size_t chunk);
  FaultPlan& truncate_chunk(std::size_t iteration, std::size_t rank,
                            std::size_t chunk);

  const std::vector<FaultEvent>& events() const noexcept { return events_; }
  bool empty() const noexcept { return events_.empty(); }

  /// Samples `count` transient faults (corrupt/drop/truncate/straggler)
  /// uniformly over iterations [0, iterations) and ranks [0, world).
  static FaultPlan random(std::size_t count, std::size_t iterations,
                          std::size_t world, std::uint64_t seed);

 private:
  std::vector<FaultEvent> events_;
};

/// Mutates `payload` in place into a corrupted variant using `rng`.
using PayloadMutator =
    std::function<void(std::vector<std::uint8_t>& payload, tensor::Rng& rng)>;

class FaultInjector {
 public:
  FaultInjector(FaultPlan plan, std::uint64_t seed);

  /// Replaces the default header-bit-flip corruption with a custom mutator
  /// (e.g. the payload-fuzz mutator from the compress layer).
  void set_mutator(PayloadMutator mutator) { mutator_ = std::move(mutator); }

  /// Arms the events scheduled for iteration `t`. Called once per training
  /// iteration (Communicator::begin_iteration forwards here).
  void begin_iteration(std::size_t t) noexcept { iteration_ = t; }
  std::size_t iteration() const noexcept { return iteration_; }

  /// Consumes the pending whole-payload event of `kind` for `rank` at the
  /// current iteration, if any. Returns true when the event fired
  /// (one-shot). Chunk-scoped events are never matched here.
  bool take(FaultKind kind, std::size_t rank) noexcept;

  /// Consumes the pending event of `kind` for `rank` scoped to chunk round
  /// `chunk` at the current iteration (one-shot, like take()).
  bool take_chunk(FaultKind kind, std::size_t rank,
                  std::size_t chunk) noexcept;

  /// Consumes and returns every pending event of `kind` at the current
  /// iteration (used for crash / straggler processing at iteration start).
  std::vector<FaultEvent> take_all(FaultKind kind);

  /// True if any event of `kind` is pending for the current iteration.
  bool pending(FaultKind kind) const noexcept;

  /// Applies the corruption mutator to `payload` (no-op on empty input).
  void corrupt_payload(std::vector<std::uint8_t>& payload);

  /// Truncates `payload` to a strict prefix (at least one byte dropped).
  void truncate_payload(std::vector<std::uint8_t>& payload);

  /// Events that actually fired so far (for reporting / assertions).
  std::size_t fired_count() const noexcept { return fired_; }

  tensor::Rng& rng() noexcept { return rng_; }

 private:
  std::vector<FaultEvent> events_;
  std::vector<bool> used_;
  std::size_t iteration_ = 0;
  std::size_t fired_ = 0;
  tensor::Rng rng_;
  PayloadMutator mutator_;
};

}  // namespace compso::comm
