#pragma once
// Collective algorithm layer (DESIGN.md §16): ring vs recursive-doubling
// vs hierarchical two-level implementations of allreduce / broadcast /
// allgatherv, with message-size- and topology-aware selection, priced
// through the alpha-beta NetworkModel.
//
// Two halves, both pure functions so the Communicator, the perf-model
// lookup tables, and the benches price collectives identically:
//
//  - *time models*: the per-algorithm alpha-beta cost under a Topology +
//    NetworkModel. kRing reproduces the legacy flat-ring formulas bit for
//    bit, so a Communicator with selection disabled (the default) times
//    every collective exactly as before this layer existed.
//
//  - *functional implementations*: run_allreduce / run_broadcast move the
//    real bytes along each algorithm's communication structure (ring
//    segment rotation, recursive-doubling fold-in/fold-out pairing,
//    node-leader two-level routing). Reduction arithmetic is
//    *canonicalized*: every algorithm accumulates contributions in
//    ascending-participating-rank order with linear association — the
//    exact order the flat reference uses — so algorithm selection changes
//    modeled time and traffic but never training bits. (Real NCCL
//    algorithm switches do perturb float sums; this simulator's prized
//    invariant is bit-exact reproducibility, so the reduction order is
//    pinned and only the routing structure varies per algorithm. The
//    property tests exercise that structure: a wrong segment bound,
//    rotation index, fold partner, or node map leaves stale bytes in some
//    participant's buffer.)

#include "src/comm/network_model.hpp"
#include "src/comm/topology.hpp"

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace compso::comm {

enum class CollectiveAlgo : std::uint8_t {
  kRing = 0,               ///< flat ring (the legacy default timing model).
  kRecursiveDoubling = 1,  ///< log2(p) rounds; latency-optimal.
  kHierarchical = 2,       ///< intra-node (NVLink) level, then inter-node.
};

const char* to_string(CollectiveAlgo algo) noexcept;

/// Message-size-aware selection knobs (mxnet kvstore-style switching).
/// Defaults keep selection OFF: every collective uses its legacy model
/// (ring for allreduce/allgather, hierarchical binomial for broadcast),
/// so existing trajectories and timings are untouched until a caller
/// opts in.
struct CollectiveConfig {
  bool auto_select = false;
  /// At or below this many bytes the latency term dominates: recursive
  /// doubling (log2(p) rounds) beats the ring's 2(p-1) rounds.
  std::size_t small_message_bytes = 64 * 1024;
  /// At or above this many bytes on a multi-node topology, the two-level
  /// hierarchical algorithm wins: the inter-node phase runs over node
  /// leaders only (latency ~ nodes, not ranks) and the intra-node phase
  /// rides NVLink.
  std::size_t hierarchical_min_bytes = 64 * 1024;
};

/// Selects the algorithm for a `bytes`-sized allreduce/allgather-family
/// collective over `participants` ranks of `topo`. With auto_select off
/// this always returns kRing (the legacy model).
CollectiveAlgo select_algo(const CollectiveConfig& cfg, const Topology& topo,
                           std::size_t participants,
                           std::size_t bytes) noexcept;

/// Cost-based allreduce selection: evaluates the three time models and
/// returns the cheapest (ties prefer kRing, then kRecursiveDoubling).
/// Fixed byte thresholds mis-pick at the extremes — at bandwidth-bound
/// gigabyte messages the hierarchical algorithm's extra intra-node pass
/// costs more than its inter-node saving, so the flat ring wins again —
/// and the models are cheap to evaluate, so selection just prices them.
/// With auto_select off this returns kRing (the legacy model).
CollectiveAlgo select_allreduce_algo(const CollectiveConfig& cfg,
                                     const Topology& topo,
                                     const NetworkModel& net,
                                     std::size_t participants,
                                     std::size_t bytes) noexcept;

// --- alpha-beta time models -------------------------------------------
// All return 0 for p <= 1 or empty messages, like the legacy formulas.

double allreduce_time(CollectiveAlgo algo, const Topology& topo,
                      const NetworkModel& net, std::size_t participants,
                      std::size_t bytes) noexcept;
double broadcast_time(CollectiveAlgo algo, const Topology& topo,
                      const NetworkModel& net, std::size_t participants,
                      std::size_t bytes) noexcept;
double allgatherv_time(CollectiveAlgo algo, const Topology& topo,
                       const NetworkModel& net, std::size_t participants,
                       std::span<const std::size_t> bytes_per_rank) noexcept;
/// Equal-chunk allgather (every rank contributes `bytes_per_rank`).
double allgather_time(CollectiveAlgo algo, const Topology& topo,
                      const NetworkModel& net, std::size_t participants,
                      std::size_t bytes_per_rank) noexcept;
/// Reduce-to-root (the sharded factor exchange, DESIGN.md §16): binomial
/// tree for small messages, reduce-scatter + gather-to-root
/// (Rabenseifner) for large ones; the model takes the cheaper of the two.
double reduce_time(CollectiveAlgo algo, const Topology& topo,
                   const NetworkModel& net, std::size_t participants,
                   std::size_t bytes) noexcept;

// --- functional implementations ---------------------------------------
// `bufs` has one entry per world rank; only ranks with `participating[r]
// != 0` contribute and receive (others are untouched). All participating
// buffers must share a length. Results are byte-identical to the flat
// canonical reduction (ascending participating rank, linear association).

void run_allreduce(CollectiveAlgo algo, const Topology& topo,
                   std::vector<std::span<float>>& bufs,
                   const std::vector<std::uint8_t>& participating);

/// Delivers root's buffer to every participating rank along the
/// algorithm's edges (ring chain / binomial tree / leader two-level).
void run_broadcast(CollectiveAlgo algo, const Topology& topo,
                   std::vector<std::span<float>>& bufs, std::size_t root,
                   const std::vector<std::uint8_t>& participating);

/// Sum-reduce every participating buffer into `bufs[root]` only, in the
/// canonical ascending order — bufs[root] ends bit-identical to what
/// run_allreduce would leave in it; other participants keep their local
/// contribution (a real reduce does not write them back).
void run_reduce(const std::vector<std::span<float>>& bufs, std::size_t root,
                const std::vector<std::uint8_t>& participating);

}  // namespace compso::comm
