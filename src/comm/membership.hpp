#pragma once
// Deterministic liveness and elastic-membership layer (DESIGN.md §14).
//
// Production failure detectors cannot read the fault plan; they watch
// heartbeats. This layer reproduces that split inside the simulator:
//
//  - The *physical plane* records what the simulated cluster actually does:
//    which ranks are alive (kCrash / kRecover events) and whose heartbeats
//    are suppressed in flight (kSilence). The Communicator feeds injector
//    events into it at `begin_iteration`.
//  - The *detection plane* sees only the heartbeat ledger and the per-rank
//    simulated clocks. Suspicion, probing with exponential backoff, and
//    eviction are decided exclusively from missed heartbeats — never from
//    the FaultPlan.
//
// Degradation ladder for a rank that does not arrive at the step barrier:
//
//   1. wait until deadline      participants wait `straggler_deadline_s`
//                               (charged to their simulated clocks);
//   2. continue-without         the step runs over the remaining
//                               participants with renormalized averages;
//   3. suspect                  after `suspect_after_misses` consecutive
//                               missed heartbeats (or
//                               `straggle_suspect_after` consecutive
//                               deadline exclusions) the rank is suspected
//                               and nobody waits for it any more;
//   4. evict                    after `evict_after_probes` failed probes,
//                               spaced with exponential backoff
//                               (`probe_backoff_initial`,
//                               `probe_backoff_factor`), the rank is
//                               removed from the group.
//
// A suspected rank that heartbeats again (and is within the deadline) is
// redeemed; an evicted rank that heartbeats again is readmitted. Both paths
// go through the kRejoining phase: the rank sits out exactly one step while
// the optimizers re-sync its replica from a survivor (in-graph CKPT-frame
// copy, see DistKfac/DistSgd), then rejoins as a full participant. Any rank
// that misses at least one step's collectives is marked stale and must take
// the rejoin path — a stale replica can never silently re-enter the group.
//
// Everything here runs on the optimizer thread once per iteration and is a
// pure function of (config, prior state, clocks, heartbeats), so the whole
// ladder is bit-deterministic across engine thread counts and serializes
// into the PR-2 checkpoint (save/resume mid-rejoin is exact).

#include "src/codec/wire.hpp"

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace compso::comm {

enum class RankPhase : std::uint8_t {
  kHealthy = 0,
  kSuspect = 1,
  kEvicted = 2,
  kRejoining = 3,
};

const char* to_string(RankPhase phase) noexcept;

struct MembershipConfig {
  /// Consecutive missed heartbeats before a healthy rank is suspected.
  std::size_t suspect_after_misses = 2;
  /// Iterations until the first liveness probe of a fresh suspect.
  std::size_t probe_backoff_initial = 1;
  /// Probe-interval multiplier after each failed probe (exponential).
  std::size_t probe_backoff_factor = 2;
  /// Failed probes before a suspect is evicted.
  std::size_t evict_after_probes = 2;
  /// How long participants wait at the step barrier for a late rank before
  /// continuing without it. Also the lag bound for redemption.
  double straggler_deadline_s = 8.0;
  /// Consecutive deadline exclusions before a straggler is suspected.
  std::size_t straggle_suspect_after = 3;
};

/// What one membership tick decided; the Communicator applies the mask,
/// clock waits, evictions, and readmissions, and mirrors the counters into
/// RecoveryStats / obs.
struct MembershipDecisions {
  /// Per-rank: 1 = full participant in this step's compute + collectives.
  std::vector<std::uint8_t> participating;
  /// Heartbeat misses observed this tick (detection-plane events).
  std::uint64_t misses = 0;
  /// Ranks whose suspicion ladder completed this tick (evict rung).
  std::vector<std::size_t> evicted;
  /// Evicted ranks that heartbeated again (readmit + rejoin ladder).
  std::vector<std::size_t> readmitted;
  /// Ranks newly suspected this tick.
  std::vector<std::size_t> suspected;
  /// Suspected / striking ranks redeemed into kRejoining this tick.
  std::vector<std::size_t> redeemed;
  /// Active ranks excluded from this step (continue-without rung).
  std::vector<std::size_t> excluded;
  /// Healthy-but-absent ranks participants waited the full deadline for.
  std::size_t waited_for = 0;
};

class Membership {
 public:
  explicit Membership(std::size_t world);

  void set_config(const MembershipConfig& cfg) noexcept { cfg_ = cfg; }
  const MembershipConfig& config() const noexcept { return cfg_; }
  std::size_t world_size() const noexcept { return rs_.size(); }

  // --- physical plane (fed from FaultPlan events; not read by detection) ---
  void set_alive(std::size_t rank, bool alive) noexcept;
  /// Suppresses rank's heartbeats for iterations [t, t + duration).
  void silence(std::size_t rank, std::size_t t, std::size_t duration) noexcept;
  bool alive(std::size_t rank) const noexcept;
  /// True when the rank emits a heartbeat visible at iteration `t`.
  bool heartbeat_visible(std::size_t rank, std::size_t t) const noexcept;

  // --- detection plane ---
  /// Runs one liveness tick for iteration `t` over the group: ingests the
  /// heartbeat ledger, advances the suspicion/probe ladder, and decides this
  /// step's participation. `clock_times` are the per-rank simulated clocks;
  /// `active` is the current group mask. Guarantees at least one
  /// participant.
  MembershipDecisions tick(std::size_t t, std::span<const double> clock_times,
                           const std::vector<std::uint8_t>& active);

  RankPhase phase(std::size_t rank) const noexcept;
  std::uint64_t misses(std::size_t rank) const noexcept;

  // --- transitions driven from outside the tick ---
  /// Marks an externally evicted rank (Communicator::evict).
  void mark_evicted(std::size_t rank) noexcept;
  /// Starts the rejoin ladder: the rank sits out iteration `t` (resync step)
  /// and is promoted back to kHealthy at the next tick.
  void mark_rejoining(std::size_t rank, std::size_t t) noexcept;
  /// Resets a rank to a clean healthy record (mask-driven reactivation).
  void mark_healthy(std::size_t rank) noexcept;

  // --- checkpoint round-trip (bit-exact, including mid-rejoin) ---
  void serialize(std::vector<std::uint8_t>& out) const;
  void deserialize(codec::wire::Reader& reader);

 private:
  struct RankState {
    RankPhase phase = RankPhase::kHealthy;
    std::uint8_t alive = 1;
    std::uint8_t stale = 0;  ///< missed >=1 step's collectives; must resync.
    std::uint64_t silenced_until = 0;
    std::uint64_t misses = 0;          ///< consecutive heartbeat misses.
    std::uint64_t strikes = 0;         ///< consecutive deadline exclusions.
    std::uint64_t probes_failed = 0;
    std::uint64_t probe_interval = 0;  ///< current backoff spacing (iters).
    std::uint64_t next_probe = 0;
    std::uint64_t last_heartbeat = 0;
    std::uint64_t rejoin_iter = 0;     ///< iteration spent in kRejoining.
  };

  MembershipConfig cfg_;
  std::vector<RankState> rs_;
};

}  // namespace compso::comm
