#pragma once
// Simulated communicator: functional collectives over all ranks' buffers
// plus an analytic timing model for each collective.
//
// SPMD style: because the simulator is deterministic and single-process, a
// collective is invoked once with every rank's buffer. Data really moves
// (so downstream math sees exactly what a real cluster would see), and all
// participating clocks advance by the modeled collective time.
//
// Timing models (ring algorithms, the NCCL default at these scales):
//  - ring allreduce:   2*(p-1)/p * n bytes through each rank's slowest link
//  - ring allgather(v): each rank receives (total - own) bytes
//  - broadcast:        hierarchical binomial (inter-node tree, then NVLink)
//  - reduce-scatter:   (p-1)/p * n bytes per rank
// The bottleneck link is inter-node whenever the topology spans nodes.

#include "src/comm/collectives.hpp"
#include "src/comm/fault_injector.hpp"
#include "src/comm/membership.hpp"
#include "src/comm/network_model.hpp"
#include "src/comm/topology.hpp"
#include "src/obs/obs.hpp"

#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

namespace compso::comm {

/// Per-rank simulated clocks. Collectives synchronize: they start at the
/// latest participant clock and all participants end together.
class SimClocks {
 public:
  explicit SimClocks(std::size_t world) : t_(world, 0.0) {}

  std::size_t world_size() const noexcept { return t_.size(); }
  double at(std::size_t rank) const noexcept { return t_[rank]; }
  std::span<const double> times() const noexcept { return t_; }
  void advance(std::size_t rank, double dt) noexcept { t_[rank] += dt; }
  double max_time() const noexcept;
  /// Advance every clock to max(clock) + dt (a synchronizing step).
  void sync_advance(double dt) noexcept;
  /// Advance the masked clocks to max(masked clock) + dt; the rest are
  /// frozen (evicted / excluded ranks do not march with the group).
  void sync_advance_masked(double dt,
                           const std::vector<std::uint8_t>& mask) noexcept;
  void reset() noexcept { for (auto& t : t_) t = 0.0; }

 private:
  std::vector<double> t_;
};

/// Per-collective accumulated simulated time, for the Fig. 1 breakdown.
struct CommStats {
  double allreduce_s = 0.0;
  double allgather_s = 0.0;
  double broadcast_s = 0.0;
  double reduce_scatter_s = 0.0;
  std::uint64_t allreduce_bytes = 0;
  std::uint64_t allgather_bytes = 0;

  double total_s() const noexcept {
    return allreduce_s + allgather_s + broadcast_s + reduce_scatter_s;
  }
};

/// Per-op × per-algorithm call counters (DESIGN.md §16), indexed by
/// `static_cast<std::size_t>(CollectiveAlgo)`. Filled by the functional
/// collectives so benches can audit which algorithm actually carried each
/// op; timing-only queries do not count.
struct AlgoStats {
  std::uint64_t allreduce[3] = {0, 0, 0};
  std::uint64_t allgather[3] = {0, 0, 0};
  std::uint64_t broadcast[3] = {0, 0, 0};
  std::uint64_t reduce[3] = {0, 0, 0};
};

/// Counters for every fault observed and every recovery action taken,
/// surfaced alongside CommStats. The comm layer fills the injection /
/// eviction rows; the optimizers and the fault-tolerant trainer fill the
/// policy rows (retries, fallbacks, skips) through Communicator::recovery().
struct RecoveryStats {
  // --- faults injected by the transport (FaultInjector hooks) ---
  std::uint64_t corrupt_injected = 0;
  std::uint64_t drops_injected = 0;
  std::uint64_t truncations_injected = 0;
  std::uint64_t straggler_events = 0;
  // --- recovery actions ---
  std::uint64_t decode_retries = 0;    ///< re-sent collectives after decode failure.
  std::uint64_t decode_failures = 0;   ///< retries exhausted on a collective.
  std::uint64_t fallback_steps = 0;    ///< layer-steps on the uncompressed path.
  std::uint64_t degraded_layers = 0;   ///< layers permanently on fallback.
  std::uint64_t evictions = 0;         ///< ranks removed by the liveness ladder.
  std::uint64_t nonfinite_skips = 0;   ///< layer updates skipped on NaN/Inf.
  std::uint64_t bound_tightenings = 0; ///< adaptive-schedule tightenings.
  std::uint64_t checkpoint_saves = 0;
  std::uint64_t checkpoint_restores = 0;
  // --- membership / liveness ladder (DESIGN.md §14) ---
  std::uint64_t heartbeat_misses = 0;    ///< detection-plane missed beats.
  std::uint64_t suspicions = 0;          ///< ranks entering kSuspect.
  std::uint64_t deadline_waits = 0;      ///< barrier waits for absent ranks.
  std::uint64_t deadline_exclusions = 0; ///< continue-without step exclusions.
  std::uint64_t readmissions = 0;        ///< evicted ranks readmitted.
  std::uint64_t resyncs = 0;             ///< rejoining replicas re-synced.

  std::uint64_t faults_injected() const noexcept {
    return corrupt_injected + drops_injected + truncations_injected +
           straggler_events;
  }
  std::uint64_t recovery_actions() const noexcept {
    return decode_retries + fallback_steps + evictions + nonfinite_skips +
           readmissions + resyncs;
  }
  std::string to_string() const;
};

class Communicator {
 public:
  /// Mutates the gathered byte stream of `allgatherv` in flight — the test
  /// hook that models a corrupting transport, so end-to-end paths can prove
  /// the payload CRC/validation layer catches damaged frames.
  using PayloadFault = std::function<void(std::vector<std::uint8_t>&)>;

  Communicator(Topology topo, NetworkModel net)
      : topo_(topo), net_(std::move(net)), clocks_(topo.world_size()),
        membership_(topo.world_size()), active_(topo.world_size(), 1),
        participating_(topo.world_size(), 1) {}

  const Topology& topology() const noexcept { return topo_; }
  const NetworkModel& network() const noexcept { return net_; }
  std::size_t world_size() const noexcept { return topo_.world_size(); }
  SimClocks& clocks() noexcept { return clocks_; }
  const SimClocks& clocks() const noexcept { return clocks_; }
  CommStats& stats() noexcept { return stats_; }
  const CommStats& stats() const noexcept { return stats_; }
  void reset_stats() noexcept { stats_ = {}; }
  RecoveryStats& recovery() noexcept { return recovery_; }
  const RecoveryStats& recovery() const noexcept { return recovery_; }

  // --- observability ---
  /// Attaches metrics/tracer hooks (copies the ObsHooks value; the
  /// pointed-at registry and tracer are not owned). Every collective then
  /// records a span plus `comm.<op>.bytes` / `comm.<op>.calls` counters
  /// whose byte totals reconcile exactly with CommStats, and every fault /
  /// eviction site counts a matching `recovery.<field>` metric.
  void set_obs(obs::ObsHooks hooks) noexcept { obs_ = hooks; }
  const obs::ObsHooks& obs() const noexcept { return obs_; }

  // --- rank liveness / elastic membership (DESIGN.md §14) ---
  /// Ranks in the collective group. Evicted ranks keep their buffer slots
  /// in every call (SPMD style) but contribute nothing and receive nothing.
  bool is_active(std::size_t rank) const noexcept {
    return rank < active_.size() && active_[rank] != 0;
  }
  std::size_t active_count() const noexcept;
  std::vector<std::size_t> active_ranks() const;
  std::size_t first_active_rank() const;
  /// Ranks participating in *this step's* compute and collectives: active,
  /// healthy, and arrived at the barrier. Excluded stragglers, suspects,
  /// and ranks mid-rejoin stay active but sit the step out.
  bool is_participating(std::size_t rank) const noexcept {
    return rank < participating_.size() && participating_[rank] != 0;
  }
  std::size_t participant_count() const noexcept;
  std::vector<std::size_t> participant_ranks() const;
  std::size_t first_participant() const;
  /// Ranks running this step's rejoin/resync ladder (active, not yet
  /// participating; the optimizers copy a survivor's state into them).
  const std::vector<std::size_t>& rejoining_ranks() const noexcept {
    return rejoining_;
  }
  bool is_rejoining(std::size_t rank) const noexcept;
  /// Removes a rank from the collective group (idempotent); counts an
  /// eviction in RecoveryStats on the first call per rank.
  void evict(std::size_t rank);
  /// Returns an evicted rank to the group through the rejoin ladder: it
  /// sits out one resync step (rejoining_ranks) and participates from the
  /// next. Its clock fast-forwards to the group's front. Idempotent for
  /// ranks that are already active.
  void readmit(std::size_t rank);
  /// Replaces the liveness mask (checkpoint restore, admin override). The
  /// mask must match the world size and keep at least one rank active;
  /// every 1->0 edge is routed through the membership layer as an eviction
  /// and every 0->1 edge as a readmission, so RecoveryStats/obs never
  /// silently drift from the group state.
  void set_active_mask(const std::vector<std::uint8_t>& mask);
  const std::vector<std::uint8_t>& active_mask() const noexcept {
    return active_;
  }
  Membership& membership() noexcept { return membership_; }
  const Membership& membership() const noexcept { return membership_; }
  void set_membership_config(const MembershipConfig& cfg) noexcept {
    membership_.set_config(cfg);
  }
  /// Recomputes this step's participation from the membership ledger
  /// (restore path: call after Membership::deserialize).
  void refresh_participation();

  // --- fault injection ---
  /// Attaches a fault injector (nullptr detaches). Not owned.
  void set_fault_injector(FaultInjector* injector) noexcept {
    injector_ = injector;
  }
  FaultInjector* fault_injector() const noexcept { return injector_; }
  /// Starts training iteration `t`: arms the injector's events, feeds
  /// crash/silence/recover edges into the membership layer's physical
  /// plane, advances straggler clocks, and runs one liveness tick — the
  /// heartbeat ledger decides suspicion, deadline exclusion, eviction, and
  /// readmission (never the FaultPlan). Call once per iteration before the
  /// iteration's collectives.
  void begin_iteration(std::size_t t);

  // --- collective algorithm selection (DESIGN.md §16) ---
  /// Installs the message-size-aware algorithm selection knobs. The
  /// default-constructed config keeps selection OFF: every collective uses
  /// its legacy model (ring for the allreduce/allgather family,
  /// hierarchical binomial for broadcast), bit-for-bit.
  void set_collective_config(const CollectiveConfig& cfg) noexcept {
    coll_ = cfg;
  }
  const CollectiveConfig& collective_config() const noexcept { return coll_; }
  /// Algorithm a `bytes`-sized collective of each family would use under
  /// the current config and participant count (selection is
  /// deterministic, so these are pure queries).
  CollectiveAlgo allreduce_algo(std::size_t bytes) const noexcept;
  CollectiveAlgo allgather_algo(std::size_t bytes) const noexcept;
  CollectiveAlgo broadcast_algo(std::size_t bytes) const noexcept;
  const AlgoStats& algo_stats() const noexcept { return algo_stats_; }

  // --- analytic timing queries (used by the perf-model lookup table) ---
  double allreduce_time(std::size_t bytes) const noexcept;
  double allgather_time(std::size_t bytes_per_rank) const noexcept;
  double allgatherv_time(std::span<const std::size_t> bytes_per_rank)
      const noexcept;
  double broadcast_time(std::size_t bytes) const noexcept;
  /// Large-message pipelined broadcast (NCCL-style ring/chunked tree):
  /// latency grows with log2(p), bandwidth term is a single traversal.
  double pipelined_broadcast_time(std::size_t bytes) const noexcept;
  double reduce_scatter_time(std::size_t bytes) const noexcept;
  /// Reduce-to-root (sharded factor exchange): binomial tree / ring
  /// reduce-scatter+gather / hierarchical per the selected algorithm.
  double reduce_time(std::size_t bytes) const noexcept;

  // --- functional collectives (move data + advance clocks + stats) ---
  /// In-place sum-allreduce: every rank's buffer becomes the element sum.
  void allreduce_sum(std::vector<std::span<float>> bufs);
  /// Equal-chunk allgather: each rank contributes `send[rank]`; on return
  /// `recv[rank]` holds the concatenation in rank order.
  void allgather(const std::vector<std::vector<float>>& send,
                 std::vector<std::vector<float>>& recv);
  /// Variable-size byte allgather (compressed payloads differ per rank).
  /// An attached FaultInjector may corrupt, truncate, or drop individual
  /// ranks' entries in flight (one-shot events for the current iteration).
  void allgatherv(const std::vector<std::vector<std::uint8_t>>& send,
                  std::vector<std::vector<std::uint8_t>>& recv);
  /// One round of a chunked allgatherv (DESIGN.md §15): each participating
  /// rank contributes its round-`round` chunk frame (`send[r]`, empty when
  /// that rank has no chunk this round), and on return `recv[src]` holds
  /// the bytes delivered from `src` — every participant sees the same copy
  /// (SPMD), non-participants get empty entries. Delivery is per-source
  /// slot, so damage to one rank's frame never shifts another's (real
  /// allgatherv places segments at receiver-known offsets). Chunk-scoped
  /// transient faults (FaultPlan::*_chunk, matched on `round`) corrupt /
  /// truncate / drop individual frames one-shot; whole-payload events and
  /// the PayloadFault hook do not apply here. Timing and stats: exactly
  /// one allgatherv_time over this round's intended frame sizes — the
  /// per-round wire occupancy the network model charges — accumulated
  /// under the same "allgather" op so CommStats/obs reconciliation is
  /// unchanged, plus `chunk.rounds` / `chunk.bytes` counters.
  void allgatherv_chunks(
      const std::vector<std::span<const std::uint8_t>>& send,
      std::vector<std::vector<std::uint8_t>>& recv, std::size_t round);
  /// Installs (or clears, with nullptr) the byte-payload fault hook. The
  /// hook sees the concatenated stream of `allgatherv` and the delivered
  /// copy of `broadcast_bytes` — both byte-moving collectives are
  /// fault-testable.
  void set_payload_fault(PayloadFault fault) { fault_ = std::move(fault); }
  /// Broadcast root's buffer to every rank (buffers must be same length).
  void broadcast(std::vector<std::span<float>> bufs, std::size_t root);
  /// Byte broadcast of root's payload; other entries are overwritten.
  void broadcast_bytes(std::vector<std::vector<std::uint8_t>>& bufs,
                       std::size_t root);
  /// Sum-reduce into `bufs[root]` only: root's buffer becomes the element
  /// sum over participating ranks in the canonical (ascending-rank,
  /// linear) order — bit-identical to what allreduce_sum would leave in
  /// it. Other participants keep their local contribution. Root must be
  /// participating. Time and bytes accumulate under the "allreduce" op
  /// (same row of CommStats/obs), so the sharded factor exchange
  /// reconciles against the same counters as the replicated one.
  void reduce_sum(std::vector<std::span<float>> bufs, std::size_t root);
  /// Sum-reduce-scatter: buffers must share a length divisible by the
  /// world size; on return each rank's buffer is resized to its chunk of
  /// the element-wise sum (rank r gets chunk r).
  void reduce_scatter_sum(std::vector<std::vector<float>>& bufs);

 private:
  /// Bandwidth (bytes/s) and latency of the bottleneck link of a ring over
  /// the full world.
  LinkParams ring_bottleneck() const noexcept;

  /// Records one finished collective into the attached obs hooks: a span
  /// of the modeled duration ending at the current tracer time, plus the
  /// calls/bytes counters and a duration histogram.
  void record_collective(std::string_view op, double dt, std::uint64_t bytes);

  /// Applies the readmit transition with `iter` as the resync step.
  void readmit_at(std::size_t rank, std::size_t iter);

  Topology topo_;
  NetworkModel net_;
  CollectiveConfig coll_;
  AlgoStats algo_stats_;
  SimClocks clocks_;
  CommStats stats_;
  RecoveryStats recovery_;
  PayloadFault fault_;
  FaultInjector* injector_ = nullptr;
  Membership membership_;
  std::vector<std::uint8_t> active_;         ///< 1 = in group, 0 = evicted.
  std::vector<std::uint8_t> participating_;  ///< 1 = in this step's barrier.
  std::vector<std::size_t> rejoining_;       ///< resyncing this step.
  std::size_t last_tick_ = 0;                ///< latest begin_iteration t.
  obs::ObsHooks obs_;
};

/// Deterministic obs clock over the communicator's simulated time: reads
/// max(rank clocks) in integer nanoseconds. Collectives are the only
/// points where simulated time advances, and they run on the optimizer
/// thread, so the clock satisfies the Clock::deterministic() contract.
inline obs::FunctionClock sim_time_clock(const SimClocks& clocks) {
  return obs::FunctionClock(
      [&clocks] { return obs::seconds_to_ns(clocks.max_time()); },
      /*deterministic=*/true);
}

}  // namespace compso::comm
