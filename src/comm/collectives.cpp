#include "src/comm/collectives.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <stdexcept>

namespace compso::comm {
namespace {

/// Bottleneck link of a flat collective spanning the whole topology
/// (matches the legacy Communicator::ring_bottleneck).
LinkParams flat_bottleneck(const Topology& topo,
                           const NetworkModel& net) noexcept {
  if (topo.nodes > 1) return net.inter_node();
  if (topo.world_size() > 1) return net.intra_node();
  return LinkParams{0.0, 1.0};
}

/// ceil(log2(p)) for p >= 1.
double rounds_log2(std::size_t p) noexcept {
  return p <= 1 ? 0.0 : static_cast<double>(std::bit_width(p - 1));
}

/// How the `p` participants spread over the hierarchy: up to
/// `gpus_per_node` per node, never more nodes than the topology has.
struct HierShape {
  std::size_t per_node = 1;  ///< ranks sharing a node (intra level size).
  std::size_t nodes = 1;     ///< node-leader count (inter level size).
};

HierShape hier_shape(const Topology& topo, std::size_t p) noexcept {
  HierShape h;
  h.per_node = std::max<std::size_t>(
      1, std::min(topo.gpus_per_node, p));
  h.nodes = std::max<std::size_t>(
      1, std::min(topo.nodes, (p + h.per_node - 1) / h.per_node));
  return h;
}

/// Ring allreduce over `p` ranks of one link class:
/// reduce-scatter + allgather, 2(p-1) rounds, 2(p-1)/p of the payload
/// through each rank's slowest link.
double ring_allreduce(const LinkParams& link, std::size_t p,
                      std::size_t bytes) noexcept {
  if (p <= 1 || bytes == 0) return 0.0;
  const double pd = static_cast<double>(p);
  const double wire = 2.0 * (pd - 1.0) / pd * static_cast<double>(bytes);
  return 2.0 * (pd - 1.0) * link.latency_s + wire / link.bandwidth_Bps;
}

std::vector<std::size_t> participant_list(
    const std::vector<std::uint8_t>& participating, std::size_t nbufs) {
  std::vector<std::size_t> idx;
  idx.reserve(nbufs);
  for (std::size_t r = 0; r < nbufs; ++r) {
    if (r < participating.size() && participating[r] != 0) idx.push_back(r);
  }
  return idx;
}

/// The canonical reduction every algorithm must reproduce: contributions
/// summed in ascending participating-rank order, linear association —
/// exactly the flat reference (Communicator::allreduce_sum's lead
/// accumulation).
void canonical_sum(const std::vector<std::span<float>>& bufs,
                   const std::vector<std::size_t>& idx,
                   std::vector<float>& scratch) {
  const std::size_t n = bufs[idx[0]].size();
  scratch.assign(bufs[idx[0]].begin(), bufs[idx[0]].end());
  for (std::size_t k = 1; k < idx.size(); ++k) {
    const auto src = bufs[idx[k]];
    if (src.size() != n) {
      throw std::invalid_argument("collectives: buffer size mismatch");
    }
    for (std::size_t i = 0; i < n; ++i) scratch[i] += src[i];
  }
}

void copy_span(std::span<const float> src, std::span<float> dst) {
  std::copy(src.begin(), src.end(), dst.begin());
}

}  // namespace

const char* to_string(CollectiveAlgo algo) noexcept {
  switch (algo) {
    case CollectiveAlgo::kRing: return "ring";
    case CollectiveAlgo::kRecursiveDoubling: return "recursive_doubling";
    case CollectiveAlgo::kHierarchical: return "hierarchical";
  }
  return "unknown";
}

CollectiveAlgo select_algo(const CollectiveConfig& cfg, const Topology& topo,
                           std::size_t participants,
                           std::size_t bytes) noexcept {
  if (!cfg.auto_select || participants <= 2) return CollectiveAlgo::kRing;
  if (bytes <= cfg.small_message_bytes) {
    return CollectiveAlgo::kRecursiveDoubling;
  }
  if (topo.nodes > 1 && topo.gpus_per_node > 1 &&
      bytes >= cfg.hierarchical_min_bytes) {
    return CollectiveAlgo::kHierarchical;
  }
  return CollectiveAlgo::kRing;
}

CollectiveAlgo select_allreduce_algo(const CollectiveConfig& cfg,
                                     const Topology& topo,
                                     const NetworkModel& net,
                                     std::size_t participants,
                                     std::size_t bytes) noexcept {
  if (!cfg.auto_select || participants <= 2) return CollectiveAlgo::kRing;
  CollectiveAlgo best = CollectiveAlgo::kRing;
  double best_t =
      allreduce_time(CollectiveAlgo::kRing, topo, net, participants, bytes);
  for (const auto algo : {CollectiveAlgo::kRecursiveDoubling,
                          CollectiveAlgo::kHierarchical}) {
    const double t = allreduce_time(algo, topo, net, participants, bytes);
    if (t < best_t) {
      best = algo;
      best_t = t;
    }
  }
  return best;
}

double allreduce_time(CollectiveAlgo algo, const Topology& topo,
                      const NetworkModel& net, std::size_t participants,
                      std::size_t bytes) noexcept {
  const std::size_t p = participants;
  if (p <= 1 || bytes == 0) return 0.0;
  switch (algo) {
    case CollectiveAlgo::kRing:
      return ring_allreduce(flat_bottleneck(topo, net), p, bytes);
    case CollectiveAlgo::kRecursiveDoubling: {
      // log2(p) full-payload exchange rounds; one extra fold round when p
      // is not a power of two (the excess ranks fold in and out).
      const LinkParams link = flat_bottleneck(topo, net);
      const double rounds =
          rounds_log2(p) + (std::has_single_bit(p) ? 0.0 : 1.0);
      return rounds * (link.latency_s +
                       static_cast<double>(bytes) / link.bandwidth_Bps);
    }
    case CollectiveAlgo::kHierarchical: {
      // Level 1: ring reduce-scatter + allgather inside each node on
      // NVLink. Level 2: ring allreduce over the node leaders on the
      // interconnect — the latency term scales with nodes, not ranks,
      // which is the whole point at 256+ ranks.
      const HierShape h = hier_shape(topo, p);
      return ring_allreduce(net.intra_node(), h.per_node, bytes) +
             ring_allreduce(net.inter_node(), h.nodes, bytes);
    }
  }
  return 0.0;
}

double broadcast_time(CollectiveAlgo algo, const Topology& topo,
                      const NetworkModel& net, std::size_t participants,
                      std::size_t bytes) noexcept {
  const std::size_t p = participants;
  if (p <= 1 || bytes == 0) return 0.0;
  switch (algo) {
    case CollectiveAlgo::kRing: {
      // Pipelined chain: log2(p) startup rounds, one payload traversal.
      const LinkParams link = flat_bottleneck(topo, net);
      return rounds_log2(p) * link.latency_s +
             static_cast<double>(bytes) / link.bandwidth_Bps;
    }
    case CollectiveAlgo::kRecursiveDoubling: {
      // Flat binomial tree: every round re-sends the full payload.
      const LinkParams link = flat_bottleneck(topo, net);
      return rounds_log2(p) *
             (link.latency_s +
              static_cast<double>(bytes) / link.bandwidth_Bps);
    }
    case CollectiveAlgo::kHierarchical: {
      // Binomial tree over the nodes on the interconnect, then a binomial
      // tree over each node's GPUs on NVLink (the legacy
      // Communicator::broadcast_time model).
      double t = 0.0;
      if (topo.nodes > 1) {
        t += rounds_log2(topo.nodes) * net.inter_node().transfer_time(bytes);
      }
      if (topo.gpus_per_node > 1) {
        t += rounds_log2(topo.gpus_per_node) *
             net.intra_node().transfer_time(bytes);
      }
      return t;
    }
  }
  return 0.0;
}

namespace {

/// Shared allgather-family model: `total` bytes end up everywhere,
/// `recv_bytes` is the worst rank's receive volume (total - own for the
/// variable-size form, (p-1)*chunk for the equal-chunk form — kept as a
/// caller-computed double so the kRing expressions match the legacy
/// formulas bit for bit).
double allgather_core(CollectiveAlgo algo, const Topology& topo,
                      const NetworkModel& net, std::size_t p, double total,
                      double recv_bytes) noexcept {
  switch (algo) {
    case CollectiveAlgo::kRing: {
      const LinkParams link = flat_bottleneck(topo, net);
      return (static_cast<double>(p) - 1.0) * link.latency_s +
             recv_bytes / link.bandwidth_Bps;
    }
    case CollectiveAlgo::kRecursiveDoubling: {
      // Bruck-style: doubling exchanges, log2(p) latency terms, the same
      // receive volume.
      const LinkParams link = flat_bottleneck(topo, net);
      return rounds_log2(p) * link.latency_s +
             recv_bytes / link.bandwidth_Bps;
    }
    case CollectiveAlgo::kHierarchical: {
      // Gather to the node leader on NVLink, leader exchange on the
      // interconnect, then a node-local broadcast of the remote share.
      // Per-node shares are modeled as uniform (the selection/pricing
      // layer has no per-node placement).
      const HierShape h = hier_shape(topo, p);
      const double td = static_cast<double>(total);
      const double node_share = td / static_cast<double>(h.nodes);
      const double remote = td - node_share;
      double t = 0.0;
      if (h.per_node > 1) {
        const LinkParams intra = net.intra_node();
        t += (static_cast<double>(h.per_node) - 1.0) * intra.latency_s +
             node_share / intra.bandwidth_Bps;            // gather
        t += rounds_log2(h.per_node) * intra.latency_s +
             remote / intra.bandwidth_Bps;                // re-broadcast
      }
      if (h.nodes > 1) {
        const LinkParams inter = net.inter_node();
        t += (static_cast<double>(h.nodes) - 1.0) * inter.latency_s +
             remote / inter.bandwidth_Bps;                // leader exchange
      }
      return t;
    }
  }
  return 0.0;
}

}  // namespace

double allgatherv_time(CollectiveAlgo algo, const Topology& topo,
                       const NetworkModel& net, std::size_t participants,
                       std::span<const std::size_t> bytes_per_rank) noexcept {
  const std::size_t p = participants;
  if (p <= 1 || bytes_per_rank.empty()) return 0.0;
  std::size_t total = 0;
  std::size_t min_own = bytes_per_rank[0];
  for (std::size_t b : bytes_per_rank) {
    total += b;
    min_own = std::min(min_own, b);
  }
  // Each rank receives (total - own) bytes; the rank with the smallest own
  // chunk receives the most (the legacy formula).
  return allgather_core(algo, topo, net, p, static_cast<double>(total),
                        static_cast<double>(total - min_own));
}

double allgather_time(CollectiveAlgo algo, const Topology& topo,
                      const NetworkModel& net, std::size_t participants,
                      std::size_t bytes_per_rank) noexcept {
  const std::size_t p = participants;
  if (p <= 1 || bytes_per_rank == 0) return 0.0;
  const double pd = static_cast<double>(p);
  return allgather_core(algo, topo, net, p,
                        pd * static_cast<double>(bytes_per_rank),
                        (pd - 1.0) * static_cast<double>(bytes_per_rank));
}

double reduce_time(CollectiveAlgo algo, const Topology& topo,
                   const NetworkModel& net, std::size_t participants,
                   std::size_t bytes) noexcept {
  const std::size_t p = participants;
  if (p <= 1 || bytes == 0) return 0.0;
  const LinkParams link = flat_bottleneck(topo, net);
  const double bd = static_cast<double>(bytes);
  // Binomial tree reduce: log2(p) rounds, full payload per round.
  const double tree =
      rounds_log2(p) * (link.latency_s + bd / link.bandwidth_Bps);
  // Rabenseifner: reduce-scatter + gather-to-root (the allreduce cost
  // shape; bandwidth-optimal for large payloads).
  const double pd = static_cast<double>(p);
  const double rab = 2.0 * (pd - 1.0) * link.latency_s +
                     2.0 * (pd - 1.0) / pd * bd / link.bandwidth_Bps;
  switch (algo) {
    case CollectiveAlgo::kRing:
      return rab;
    case CollectiveAlgo::kRecursiveDoubling:
      return tree;
    case CollectiveAlgo::kHierarchical: {
      const HierShape h = hier_shape(topo, p);
      const LinkParams intra = net.intra_node();
      const double intra_t =
          h.per_node > 1
              ? (static_cast<double>(h.per_node) - 1.0) * intra.latency_s +
                    (static_cast<double>(h.per_node) - 1.0) /
                        static_cast<double>(h.per_node) * bd /
                        intra.bandwidth_Bps
              : 0.0;
      const double inter_t =
          h.nodes > 1 ? rounds_log2(h.nodes) *
                            (net.inter_node().latency_s +
                             bd / net.inter_node().bandwidth_Bps)
                      : 0.0;
      return intra_t + inter_t;
    }
  }
  return std::min(tree, rab);
}

void run_reduce(const std::vector<std::span<float>>& bufs, std::size_t root,
                const std::vector<std::uint8_t>& participating) {
  const auto idx = participant_list(participating, bufs.size());
  if (idx.empty()) return;
  std::vector<float> scratch;
  canonical_sum(bufs, idx, scratch);
  copy_span(scratch, bufs[root]);
}

void run_allreduce(CollectiveAlgo algo, const Topology& topo,
                   std::vector<std::span<float>>& bufs,
                   const std::vector<std::uint8_t>& participating) {
  const auto idx = participant_list(participating, bufs.size());
  const std::size_t p = idx.size();
  if (p == 0) return;
  const std::size_t n = bufs[idx[0]].size();
  std::vector<float> scratch;
  canonical_sum(bufs, idx, scratch);
  if (p == 1) return;

  switch (algo) {
    case CollectiveAlgo::kRing: {
      if (n == 0) return;
      // Segment partition: p contiguous segments, the first n % p of them
      // one element longer (the standard non-divisible split).
      std::vector<std::size_t> off(p + 1, 0);
      const std::size_t base = n / p;
      const std::size_t extra = n % p;
      for (std::size_t j = 0; j < p; ++j) {
        off[j + 1] = off[j] + base + (j < extra ? 1 : 0);
      }
      // Reduce-scatter: segment j finishes (canonically reduced) at
      // participant j.
      for (std::size_t j = 0; j < p; ++j) {
        copy_span(std::span<const float>(scratch).subspan(off[j],
                                                          off[j + 1] - off[j]),
                  bufs[idx[j]].subspan(off[j], off[j + 1] - off[j]));
      }
      // Allgather rotation: p-1 steps; at step t, participant i receives
      // from its left neighbor the segment that neighbor completed at
      // step t-1 (its own reduced segment at t=0). A wrong rotation index
      // leaves a stale pre-reduce segment in someone's buffer.
      for (std::size_t t = 0; t + 1 < p; ++t) {
        for (std::size_t i = 0; i < p; ++i) {
          const std::size_t j = (i + 2 * p - 1 - t) % p;
          const std::size_t src = idx[(i + p - 1) % p];
          if (off[j + 1] == off[j]) continue;
          copy_span(
              std::span<const float>(bufs[src]).subspan(off[j],
                                                        off[j + 1] - off[j]),
              bufs[idx[i]].subspan(off[j], off[j + 1] - off[j]));
        }
      }
      return;
    }
    case CollectiveAlgo::kRecursiveDoubling: {
      // Non-power-of-two fold (Thakur et al.): the rem = p - 2^k excess
      // participants fold their contribution into a partner before the
      // butterfly and receive the result from that partner after it.
      const std::size_t pow2 = std::bit_floor(p);
      const std::size_t rem = p - pow2;
      // Butterfly among the first pow2 participants: all end with the
      // (canonical) reduction.
      for (std::size_t i = 0; i < pow2; ++i) {
        copy_span(scratch, bufs[idx[i]]);
      }
      // Fold-out: partner k hands the finished result to excess
      // participant pow2 + k. Skipping or mis-pairing this edge leaves
      // the excess ranks with stale data (the non-power-of-two property
      // tests exist for exactly this).
      for (std::size_t k = 0; k < rem; ++k) {
        copy_span(std::span<const float>(bufs[idx[k]]), bufs[idx[pow2 + k]]);
      }
      return;
    }
    case CollectiveAlgo::kHierarchical: {
      // Group participants by node; the lowest participating rank of each
      // node is its leader. Leaders run the inter-node exchange (ending
      // with the full reduction), then fan out to their node's members on
      // NVLink. A wrong node map strands a member with stale data.
      std::vector<std::size_t> leader_of_node(topo.nodes + 1, SIZE_MAX);
      for (std::size_t k = 0; k < p; ++k) {
        const std::size_t node = topo.node_of(idx[k]);
        const std::size_t slot = std::min(node, topo.nodes);
        if (leader_of_node[slot] == SIZE_MAX) leader_of_node[slot] = idx[k];
      }
      for (std::size_t node = 0; node <= topo.nodes; ++node) {
        if (leader_of_node[node] == SIZE_MAX) continue;
        copy_span(scratch, bufs[leader_of_node[node]]);
      }
      for (std::size_t k = 0; k < p; ++k) {
        const std::size_t node = topo.node_of(idx[k]);
        const std::size_t leader =
            leader_of_node[std::min(node, topo.nodes)];
        if (idx[k] == leader) continue;
        copy_span(std::span<const float>(bufs[leader]), bufs[idx[k]]);
      }
      return;
    }
  }
}

void run_broadcast(CollectiveAlgo algo, const Topology& topo,
                   std::vector<std::span<float>>& bufs, std::size_t root,
                   const std::vector<std::uint8_t>& participating) {
  const auto idx = participant_list(participating, bufs.size());
  const std::size_t p = idx.size();
  if (p <= 1) return;
  // Position of the root within the participant list.
  std::size_t rpos = 0;
  for (std::size_t k = 0; k < p; ++k) {
    if (idx[k] == root) {
      rpos = k;
      break;
    }
  }
  switch (algo) {
    case CollectiveAlgo::kRing: {
      // Pipelined chain from the root around the participant ring.
      for (std::size_t s = 1; s < p; ++s) {
        const std::size_t dst = idx[(rpos + s) % p];
        const std::size_t src = idx[(rpos + s - 1) % p];
        copy_span(std::span<const float>(bufs[src]), bufs[dst]);
      }
      return;
    }
    case CollectiveAlgo::kRecursiveDoubling: {
      // Binomial tree on root-relative virtual ranks: in round d every
      // holder v < d feeds v + d.
      for (std::size_t d = 1; d < p; d <<= 1) {
        for (std::size_t v = 0; v < d && v + d < p; ++v) {
          const std::size_t src = idx[(rpos + v) % p];
          const std::size_t dst = idx[(rpos + v + d) % p];
          copy_span(std::span<const float>(bufs[src]), bufs[dst]);
        }
      }
      return;
    }
    case CollectiveAlgo::kHierarchical: {
      // Root -> every other node's leader (interconnect), leader -> node
      // members (NVLink). The root acts as its own node's leader.
      std::vector<std::size_t> leader_of_node(topo.nodes + 1, SIZE_MAX);
      leader_of_node[std::min(topo.node_of(root), topo.nodes)] = root;
      for (std::size_t k = 0; k < p; ++k) {
        const std::size_t slot = std::min(topo.node_of(idx[k]), topo.nodes);
        if (leader_of_node[slot] == SIZE_MAX) leader_of_node[slot] = idx[k];
      }
      for (std::size_t node = 0; node <= topo.nodes; ++node) {
        const std::size_t leader = leader_of_node[node];
        if (leader == SIZE_MAX || leader == root) continue;
        copy_span(std::span<const float>(bufs[root]), bufs[leader]);
      }
      for (std::size_t k = 0; k < p; ++k) {
        const std::size_t leader =
            leader_of_node[std::min(topo.node_of(idx[k]), topo.nodes)];
        if (idx[k] == leader) continue;
        copy_span(std::span<const float>(bufs[leader]), bufs[idx[k]]);
      }
      return;
    }
  }
}

}  // namespace compso::comm
