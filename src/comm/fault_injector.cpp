#include "src/comm/fault_injector.hpp"

#include <algorithm>

namespace compso::comm {

const char* to_string(FaultKind kind) noexcept {
  switch (kind) {
    case FaultKind::kCorruptPayload: return "corrupt-payload";
    case FaultKind::kDropEntry: return "drop-entry";
    case FaultKind::kTruncateEntry: return "truncate-entry";
    case FaultKind::kStraggler: return "straggler";
    case FaultKind::kCrash: return "crash";
    case FaultKind::kNanGradient: return "nan-gradient";
    case FaultKind::kSilence: return "silence";
    case FaultKind::kRecover: return "recover";
  }
  return "unknown";
}

FaultPlan& FaultPlan::add(FaultEvent event) {
  events_.push_back(event);
  return *this;
}

FaultPlan& FaultPlan::corrupt(std::size_t iteration, std::size_t rank) {
  return add({iteration, rank, FaultKind::kCorruptPayload, 0.0});
}

FaultPlan& FaultPlan::drop(std::size_t iteration, std::size_t rank) {
  return add({iteration, rank, FaultKind::kDropEntry, 0.0});
}

FaultPlan& FaultPlan::truncate(std::size_t iteration, std::size_t rank) {
  return add({iteration, rank, FaultKind::kTruncateEntry, 0.0});
}

FaultPlan& FaultPlan::straggler(std::size_t iteration, std::size_t rank,
                                double slowdown_s) {
  return add({iteration, rank, FaultKind::kStraggler, slowdown_s});
}

FaultPlan& FaultPlan::crash(std::size_t iteration, std::size_t rank) {
  return add({iteration, rank, FaultKind::kCrash, 0.0});
}

FaultPlan& FaultPlan::nan_gradient(std::size_t iteration, std::size_t rank) {
  return add({iteration, rank, FaultKind::kNanGradient, 0.0});
}

FaultPlan& FaultPlan::silence(std::size_t iteration, std::size_t rank,
                              std::size_t duration) {
  return add({iteration, rank, FaultKind::kSilence, 0.0, duration});
}

FaultPlan& FaultPlan::recover(std::size_t iteration, std::size_t rank) {
  return add({iteration, rank, FaultKind::kRecover, 0.0});
}

FaultPlan& FaultPlan::corrupt_chunk(std::size_t iteration, std::size_t rank,
                                    std::size_t chunk) {
  return add({iteration, rank, FaultKind::kCorruptPayload, 0.0, 0, chunk});
}

FaultPlan& FaultPlan::drop_chunk(std::size_t iteration, std::size_t rank,
                                 std::size_t chunk) {
  return add({iteration, rank, FaultKind::kDropEntry, 0.0, 0, chunk});
}

FaultPlan& FaultPlan::truncate_chunk(std::size_t iteration, std::size_t rank,
                                     std::size_t chunk) {
  return add({iteration, rank, FaultKind::kTruncateEntry, 0.0, 0, chunk});
}

FaultPlan FaultPlan::random(std::size_t count, std::size_t iterations,
                            std::size_t world, std::uint64_t seed) {
  FaultPlan plan;
  if (iterations == 0 || world == 0) return plan;
  tensor::Rng rng(seed);
  constexpr FaultKind kTransient[] = {
      FaultKind::kCorruptPayload, FaultKind::kDropEntry,
      FaultKind::kTruncateEntry, FaultKind::kStraggler};
  for (std::size_t i = 0; i < count; ++i) {
    FaultEvent e;
    e.iteration = rng.uniform_index(iterations);
    e.rank = rng.uniform_index(world);
    e.kind = kTransient[rng.uniform_index(4)];
    if (e.kind == FaultKind::kStraggler) {
      e.slowdown_s = 1e-3 + 9e-3 * rng.uniform();  // 1..10 ms
    }
    plan.add(e);
  }
  return plan;
}

FaultInjector::FaultInjector(FaultPlan plan, std::uint64_t seed)
    : events_(plan.events()), used_(events_.size(), false), rng_(seed) {}

bool FaultInjector::take(FaultKind kind, std::size_t rank) noexcept {
  for (std::size_t i = 0; i < events_.size(); ++i) {
    if (!used_[i] && events_[i].iteration == iteration_ &&
        events_[i].rank == rank && events_[i].kind == kind &&
        events_[i].chunk == kNoChunk) {
      used_[i] = true;
      ++fired_;
      return true;
    }
  }
  return false;
}

bool FaultInjector::take_chunk(FaultKind kind, std::size_t rank,
                               std::size_t chunk) noexcept {
  for (std::size_t i = 0; i < events_.size(); ++i) {
    if (!used_[i] && events_[i].iteration == iteration_ &&
        events_[i].rank == rank && events_[i].kind == kind &&
        events_[i].chunk == chunk) {
      used_[i] = true;
      ++fired_;
      return true;
    }
  }
  return false;
}

std::vector<FaultEvent> FaultInjector::take_all(FaultKind kind) {
  std::vector<FaultEvent> out;
  for (std::size_t i = 0; i < events_.size(); ++i) {
    if (!used_[i] && events_[i].iteration == iteration_ &&
        events_[i].kind == kind) {
      used_[i] = true;
      ++fired_;
      out.push_back(events_[i]);
    }
  }
  return out;
}

bool FaultInjector::pending(FaultKind kind) const noexcept {
  for (std::size_t i = 0; i < events_.size(); ++i) {
    if (!used_[i] && events_[i].iteration == iteration_ &&
        events_[i].kind == kind) {
      return true;
    }
  }
  return false;
}

void FaultInjector::corrupt_payload(std::vector<std::uint8_t>& payload) {
  if (payload.empty()) return;
  if (mutator_) {
    mutator_(payload, rng_);
    return;
  }
  // Default: flip one random bit inside the leading 16 bytes — always lands
  // in the wire-format header (magic / version / count / CRC region), so
  // the decode side is guaranteed to see the damage.
  const std::size_t span = std::min<std::size_t>(payload.size(), 16);
  const std::size_t pos = rng_.uniform_index(span);
  payload[pos] ^= static_cast<std::uint8_t>(1U << rng_.uniform_index(8));
}

void FaultInjector::truncate_payload(std::vector<std::uint8_t>& payload) {
  if (payload.empty()) return;
  // Keep a strict prefix: drop between 1 byte and the whole tail.
  const std::size_t keep = rng_.uniform_index(payload.size());
  payload.resize(keep);
}

}  // namespace compso::comm
