#include "src/comm/network_model.hpp"

#include <algorithm>

namespace compso::comm {

double NetworkModel::p2p_time(const Topology& topo, std::size_t src,
                              std::size_t dst, std::size_t bytes,
                              std::size_t sharers) const noexcept {
  if (src == dst) return 0.0;
  if (topo.same_node(src, dst)) return intra_.transfer_time(bytes);
  LinkParams shared = inter_;
  if (sharers > 1) {
    shared.bandwidth_Bps /= static_cast<double>(sharers);
  }
  return shared.transfer_time(bytes);
}

NetworkModel NetworkModel::platform1() {
  // NVLink3 (A100): ~300 GB/s effective per direction per pair; ~2 us sw
  // latency. Slingshot 10: 100 Gbps = 12.5 GB/s line rate per NIC; large
  // collectives achieve ~65% of line rate (protocol + congestion), so the
  // preset stores the achievable figure.
  return NetworkModel("Platform1/Slingshot10",
                      LinkParams{2e-6, 300.0e9},
                      LinkParams{4e-6, 0.65 * 12.5e9});
}

double chunk_pipeline_makespan(std::size_t chunks, double compress_s,
                               double wire_s, double decode_s) noexcept {
  if (chunks == 0) return 0.0;
  const double fill = compress_s + wire_s + decode_s;
  const double beat =
      std::max(compress_s, std::max(wire_s, decode_s));
  return fill + static_cast<double>(chunks - 1) * beat;
}

NetworkModel NetworkModel::platform2() {
  // Slingshot 11: 200 Gbps = 25 GB/s line rate, ~65% achievable.
  return NetworkModel("Platform2/Slingshot11",
                      LinkParams{2e-6, 300.0e9},
                      LinkParams{3e-6, 0.65 * 25.0e9});
}

}  // namespace compso::comm
