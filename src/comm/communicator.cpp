#include "src/comm/communicator.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <stdexcept>

namespace compso::comm {

double SimClocks::max_time() const noexcept {
  double m = 0.0;
  for (double t : t_) m = std::max(m, t);
  return m;
}

void SimClocks::sync_advance(double dt) noexcept {
  const double start = max_time();
  for (auto& t : t_) t = start + dt;
}

LinkParams Communicator::ring_bottleneck() const noexcept {
  // Node-major rank order: a ring has one inter-node hop per node boundary.
  // Each node's NIC carries exactly one send + one receive per ring step
  // (full duplex), so the per-step bottleneck is a single inter-node link
  // when the world spans nodes, NVLink otherwise.
  if (topo_.nodes > 1) return net_.inter_node();
  if (topo_.world_size() > 1) return net_.intra_node();
  return LinkParams{0.0, 1.0};  // single rank: no communication
}

double Communicator::allreduce_time(std::size_t bytes) const noexcept {
  const std::size_t p = world_size();
  if (p <= 1 || bytes == 0) return 0.0;
  const LinkParams link = ring_bottleneck();
  const double pd = static_cast<double>(p);
  const double wire_bytes = 2.0 * (pd - 1.0) / pd * static_cast<double>(bytes);
  return 2.0 * (pd - 1.0) * link.latency_s + wire_bytes / link.bandwidth_Bps;
}

double Communicator::allgather_time(std::size_t bytes_per_rank)
    const noexcept {
  const std::size_t p = world_size();
  if (p <= 1 || bytes_per_rank == 0) return 0.0;
  const LinkParams link = ring_bottleneck();
  const double pd = static_cast<double>(p);
  const double wire_bytes = (pd - 1.0) * static_cast<double>(bytes_per_rank);
  return (pd - 1.0) * link.latency_s + wire_bytes / link.bandwidth_Bps;
}

double Communicator::allgatherv_time(
    std::span<const std::size_t> bytes_per_rank) const noexcept {
  const std::size_t p = world_size();
  if (p <= 1 || bytes_per_rank.empty()) return 0.0;
  const LinkParams link = ring_bottleneck();
  std::size_t total = 0;
  std::size_t min_own = bytes_per_rank[0];
  for (std::size_t b : bytes_per_rank) {
    total += b;
    min_own = std::min(min_own, b);
  }
  // Each rank receives (total - own) bytes over its incoming link; the rank
  // with the smallest own chunk receives the most.
  const double wire_bytes = static_cast<double>(total - min_own);
  return (static_cast<double>(p) - 1.0) * link.latency_s +
         wire_bytes / link.bandwidth_Bps;
}

double Communicator::broadcast_time(std::size_t bytes) const noexcept {
  const std::size_t p = world_size();
  if (p <= 1 || bytes == 0) return 0.0;
  // Hierarchical binomial: tree over nodes on the interconnect, then a tree
  // over the node's GPUs on NVLink.
  double t = 0.0;
  if (topo_.nodes > 1) {
    const auto rounds = static_cast<double>(std::bit_width(topo_.nodes - 1));
    t += rounds * net_.inter_node().transfer_time(bytes);
  }
  if (topo_.gpus_per_node > 1) {
    const auto rounds =
        static_cast<double>(std::bit_width(topo_.gpus_per_node - 1));
    t += rounds * net_.intra_node().transfer_time(bytes);
  }
  return t;
}

double Communicator::pipelined_broadcast_time(std::size_t bytes)
    const noexcept {
  const std::size_t p = world_size();
  if (p <= 1 || bytes == 0) return 0.0;
  const LinkParams link = ring_bottleneck();
  const auto rounds = static_cast<double>(std::bit_width(p - 1));
  return rounds * link.latency_s +
         static_cast<double>(bytes) / link.bandwidth_Bps;
}

double Communicator::reduce_scatter_time(std::size_t bytes) const noexcept {
  const std::size_t p = world_size();
  if (p <= 1 || bytes == 0) return 0.0;
  const LinkParams link = ring_bottleneck();
  const double pd = static_cast<double>(p);
  const double wire_bytes = (pd - 1.0) / pd * static_cast<double>(bytes);
  return (pd - 1.0) * link.latency_s + wire_bytes / link.bandwidth_Bps;
}

void Communicator::allreduce_sum(std::vector<std::span<float>> bufs) {
  if (bufs.size() != world_size()) {
    throw std::invalid_argument("allreduce_sum: need one buffer per rank");
  }
  const std::size_t n = bufs.empty() ? 0 : bufs[0].size();
  for (const auto& b : bufs) {
    if (b.size() != n) {
      throw std::invalid_argument("allreduce_sum: buffer size mismatch");
    }
  }
  // Functional: sum into rank 0's view, then replicate.
  for (std::size_t r = 1; r < bufs.size(); ++r) {
    for (std::size_t i = 0; i < n; ++i) bufs[0][i] += bufs[r][i];
  }
  for (std::size_t r = 1; r < bufs.size(); ++r) {
    std::copy(bufs[0].begin(), bufs[0].end(), bufs[r].begin());
  }
  const double dt = allreduce_time(n * sizeof(float));
  clocks_.sync_advance(dt);
  stats_.allreduce_s += dt;
  stats_.allreduce_bytes += n * sizeof(float);
}

void Communicator::allgather(const std::vector<std::vector<float>>& send,
                             std::vector<std::vector<float>>& recv) {
  if (send.size() != world_size()) {
    throw std::invalid_argument("allgather: need one buffer per rank");
  }
  std::vector<float> gathered;
  std::size_t max_chunk = 0;
  for (const auto& s : send) {
    gathered.insert(gathered.end(), s.begin(), s.end());
    max_chunk = std::max(max_chunk, s.size());
  }
  recv.assign(world_size(), gathered);
  const double dt = allgather_time(max_chunk * sizeof(float));
  clocks_.sync_advance(dt);
  stats_.allgather_s += dt;
  stats_.allgather_bytes +=
      (gathered.size() - (send.empty() ? 0 : send[0].size())) * sizeof(float);
}

void Communicator::allgatherv(
    const std::vector<std::vector<std::uint8_t>>& send,
    std::vector<std::vector<std::uint8_t>>& recv) {
  if (send.size() != world_size()) {
    throw std::invalid_argument("allgatherv: need one buffer per rank");
  }
  std::vector<std::uint8_t> gathered;
  std::vector<std::size_t> sizes;
  sizes.reserve(send.size());
  for (const auto& s : send) {
    gathered.insert(gathered.end(), s.begin(), s.end());
    sizes.push_back(s.size());
  }
  if (fault_) fault_(gathered);
  recv.assign(world_size(), gathered);
  const double dt = allgatherv_time(sizes);
  clocks_.sync_advance(dt);
  stats_.allgather_s += dt;
  stats_.allgather_bytes += gathered.size();
}

void Communicator::broadcast(std::vector<std::span<float>> bufs,
                             std::size_t root) {
  if (bufs.size() != world_size() || root >= world_size()) {
    throw std::invalid_argument("broadcast: bad arguments");
  }
  const auto src = bufs[root];
  for (std::size_t r = 0; r < bufs.size(); ++r) {
    if (r == root) continue;
    if (bufs[r].size() != src.size()) {
      throw std::invalid_argument("broadcast: buffer size mismatch");
    }
    std::copy(src.begin(), src.end(), bufs[r].begin());
  }
  const double dt = broadcast_time(src.size() * sizeof(float));
  clocks_.sync_advance(dt);
  stats_.broadcast_s += dt;
}

void Communicator::reduce_scatter_sum(std::vector<std::vector<float>>& bufs) {
  const std::size_t p = world_size();
  if (bufs.size() != p) {
    throw std::invalid_argument("reduce_scatter_sum: need one buffer per rank");
  }
  const std::size_t n = bufs.empty() ? 0 : bufs[0].size();
  if (n % p != 0) {
    throw std::invalid_argument(
        "reduce_scatter_sum: length must divide by world size");
  }
  for (const auto& b : bufs) {
    if (b.size() != n) {
      throw std::invalid_argument("reduce_scatter_sum: size mismatch");
    }
  }
  std::vector<float> sum(bufs[0]);
  for (std::size_t r = 1; r < p; ++r) {
    for (std::size_t i = 0; i < n; ++i) sum[i] += bufs[r][i];
  }
  const std::size_t chunk = n / p;
  for (std::size_t r = 0; r < p; ++r) {
    bufs[r].assign(sum.begin() + static_cast<std::ptrdiff_t>(r * chunk),
                   sum.begin() + static_cast<std::ptrdiff_t>((r + 1) * chunk));
  }
  const double dt = reduce_scatter_time(n * sizeof(float));
  clocks_.sync_advance(dt);
  stats_.reduce_scatter_s += dt;
}

void Communicator::broadcast_bytes(
    std::vector<std::vector<std::uint8_t>>& bufs, std::size_t root) {
  if (bufs.size() != world_size() || root >= world_size()) {
    throw std::invalid_argument("broadcast_bytes: bad arguments");
  }
  for (std::size_t r = 0; r < bufs.size(); ++r) {
    if (r != root) bufs[r] = bufs[root];
  }
  const double dt = broadcast_time(bufs[root].size());
  clocks_.sync_advance(dt);
  stats_.broadcast_s += dt;
}

}  // namespace compso::comm
