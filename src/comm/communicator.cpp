#include "src/comm/communicator.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace compso::comm {

std::string RecoveryStats::to_string() const {
  std::ostringstream os;
  os << "faults[corrupt=" << corrupt_injected << " drop=" << drops_injected
     << " trunc=" << truncations_injected << " straggle=" << straggler_events
     << "] recovery[retry=" << decode_retries << " fail=" << decode_failures
     << " fallback=" << fallback_steps << " degraded=" << degraded_layers
     << " evict=" << evictions << " nan_skip=" << nonfinite_skips
     << " tighten=" << bound_tightenings << " ckpt_save=" << checkpoint_saves
     << " ckpt_restore=" << checkpoint_restores
     << "] membership[miss=" << heartbeat_misses << " suspect=" << suspicions
     << " wait=" << deadline_waits << " exclude=" << deadline_exclusions
     << " readmit=" << readmissions << " resync=" << resyncs << "]";
  return os.str();
}

double SimClocks::max_time() const noexcept {
  double m = 0.0;
  for (double t : t_) m = std::max(m, t);
  return m;
}

void SimClocks::sync_advance(double dt) noexcept {
  const double start = max_time();
  for (auto& t : t_) t = start + dt;
}

void SimClocks::sync_advance_masked(
    double dt, const std::vector<std::uint8_t>& mask) noexcept {
  double start = 0.0;
  bool any = false;
  for (std::size_t r = 0; r < t_.size(); ++r) {
    if (r < mask.size() && mask[r] != 0) {
      start = any ? std::max(start, t_[r]) : t_[r];
      any = true;
    }
  }
  if (!any) return;
  for (std::size_t r = 0; r < t_.size(); ++r) {
    if (r < mask.size() && mask[r] != 0) t_[r] = start + dt;
  }
}

LinkParams Communicator::ring_bottleneck() const noexcept {
  // Node-major rank order: a ring has one inter-node hop per node boundary.
  // Each node's NIC carries exactly one send + one receive per ring step
  // (full duplex), so the per-step bottleneck is a single inter-node link
  // when the world spans nodes, NVLink otherwise.
  if (topo_.nodes > 1) return net_.inter_node();
  if (topo_.world_size() > 1) return net_.intra_node();
  return LinkParams{0.0, 1.0};  // single rank: no communication
}

std::size_t Communicator::active_count() const noexcept {
  std::size_t n = 0;
  for (auto a : active_) n += a != 0 ? 1 : 0;
  return n;
}

std::vector<std::size_t> Communicator::active_ranks() const {
  std::vector<std::size_t> out;
  out.reserve(active_.size());
  for (std::size_t r = 0; r < active_.size(); ++r) {
    if (active_[r] != 0) out.push_back(r);
  }
  return out;
}

std::size_t Communicator::first_active_rank() const {
  for (std::size_t r = 0; r < active_.size(); ++r) {
    if (active_[r] != 0) return r;
  }
  throw std::logic_error("Communicator: every rank has been evicted");
}

std::size_t Communicator::participant_count() const noexcept {
  std::size_t n = 0;
  for (auto p : participating_) n += p != 0 ? 1 : 0;
  return n;
}

std::vector<std::size_t> Communicator::participant_ranks() const {
  std::vector<std::size_t> out;
  out.reserve(participating_.size());
  for (std::size_t r = 0; r < participating_.size(); ++r) {
    if (participating_[r] != 0) out.push_back(r);
  }
  return out;
}

std::size_t Communicator::first_participant() const {
  for (std::size_t r = 0; r < participating_.size(); ++r) {
    if (participating_[r] != 0) return r;
  }
  throw std::logic_error("Communicator: no participating ranks");
}

bool Communicator::is_rejoining(std::size_t rank) const noexcept {
  for (std::size_t r : rejoining_) {
    if (r == rank) return true;
  }
  return false;
}

void Communicator::record_collective(std::string_view op, double dt,
                                     std::uint64_t bytes) {
  if (!obs_.enabled()) return;
  const std::uint64_t dt_ns = obs::seconds_to_ns(dt);
  std::string name = "comm.";
  name += op;
  const std::size_t stem = name.size();
  name += ".calls";
  obs_.count(name);
  name.resize(stem);
  name += ".bytes";
  obs_.count(name, bytes);
  name.resize(stem);
  name += ".sim_ns";
  obs_.count(name, dt_ns);
  name.resize(stem);
  obs_.observe(name, dt_ns);
  if (obs_.tracer != nullptr) {
    // The collective just finished: it occupies [now - dt, now] on the
    // tracer clock (exactly, under the sim clock; best-effort placement
    // under a wall clock).
    const std::uint64_t end_ns = obs_.tracer->now_rel_ns();
    const std::uint64_t ts_ns = end_ns >= dt_ns ? end_ns - dt_ns : 0;
    obs_.complete(obs::kMainTrack, std::move(name), "comm", ts_ns, dt_ns,
                  {{"bytes", bytes}});
  }
}

void Communicator::evict(std::size_t rank) {
  if (rank >= active_.size() || active_[rank] == 0) return;
  if (active_count() <= 1) {
    throw std::logic_error("Communicator: cannot evict the last rank");
  }
  active_[rank] = 0;
  participating_[rank] = 0;
  membership_.mark_evicted(rank);
  ++recovery_.evictions;
  obs_.count("recovery.evictions");
  obs_.instant(obs::kMainTrack, "membership.evict", "membership",
               {{"rank", rank}, {"iteration", last_tick_}});
}

void Communicator::readmit_at(std::size_t rank, std::size_t iter) {
  if (rank >= active_.size() || active_[rank] != 0) return;
  active_[rank] = 1;
  participating_[rank] = 0;
  membership_.mark_rejoining(rank, iter);
  // The rejoiner re-enters at the group's front: it fetches a survivor's
  // state during the resync step and marches with everyone afterwards.
  double front = clocks_.at(rank);
  for (std::size_t r = 0; r < participating_.size(); ++r) {
    if (participating_[r] != 0) front = std::max(front, clocks_.at(r));
  }
  clocks_.advance(rank, front - clocks_.at(rank));
  ++recovery_.readmissions;
  obs_.count("recovery.readmissions");
  obs_.instant(obs::kMainTrack, "membership.readmit", "membership",
               {{"rank", rank}, {"iteration", iter}});
}

void Communicator::readmit(std::size_t rank) {
  // Called between steps: the *next* iteration is the resync step.
  readmit_at(rank, last_tick_ + 1);
  rejoining_.clear();
  for (std::size_t r = 0; r < active_.size(); ++r) {
    if (membership_.phase(r) == RankPhase::kRejoining) rejoining_.push_back(r);
  }
}

void Communicator::refresh_participation() {
  participating_.assign(active_.size(), 0);
  rejoining_.clear();
  bool any = false;
  for (std::size_t r = 0; r < active_.size(); ++r) {
    if (active_[r] == 0) continue;
    if (membership_.phase(r) == RankPhase::kRejoining) rejoining_.push_back(r);
    if (membership_.phase(r) == RankPhase::kHealthy) {
      participating_[r] = 1;
      any = true;
    }
  }
  if (!any && active_count() > 0) participating_[first_active_rank()] = 1;
}

void Communicator::set_active_mask(const std::vector<std::uint8_t>& mask) {
  if (mask.size() != active_.size()) {
    throw std::invalid_argument("set_active_mask: size mismatch");
  }
  bool any = false;
  for (auto m : mask) any = any || m != 0;
  if (!any) {
    // Mirrors evict()'s last-rank guard: the group can never go empty.
    throw std::invalid_argument(
        "set_active_mask: at least one rank must stay active");
  }
  for (std::size_t r = 0; r < mask.size(); ++r) {
    if (active_[r] != 0 && mask[r] == 0) {
      membership_.mark_evicted(r);
      ++recovery_.evictions;
      obs_.count("recovery.evictions");
    } else if (active_[r] == 0 && mask[r] != 0) {
      // Reactivating an evicted rank is a readmission, never a silent
      // mask flip. The checkpoint-restore path overwrites the counters and
      // the membership ledger right after, so continuity is preserved.
      membership_.mark_healthy(r);
      ++recovery_.readmissions;
      obs_.count("recovery.readmissions");
    }
  }
  active_ = mask;
  refresh_participation();
}

void Communicator::begin_iteration(std::size_t t) {
  last_tick_ = t;
  if (injector_ != nullptr) {
    injector_->begin_iteration(t);
    // Physical plane only: the plan changes what the cluster *does* (who
    // is alive, whose heartbeats get lost, who runs slow). Detection below
    // never reads these events — it watches the heartbeat ledger.
    for (const auto& e : injector_->take_all(FaultKind::kCrash)) {
      membership_.set_alive(e.rank, false);
    }
    for (const auto& e : injector_->take_all(FaultKind::kSilence)) {
      membership_.silence(e.rank, t, e.duration);
    }
    for (const auto& e : injector_->take_all(FaultKind::kRecover)) {
      membership_.set_alive(e.rank, true);
    }
    for (const auto& e : injector_->take_all(FaultKind::kStraggler)) {
      if (is_active(e.rank)) {
        clocks_.advance(e.rank, e.slowdown_s);
        ++recovery_.straggler_events;
        obs_.count("recovery.straggler_events");
      }
    }
  }
  auto d = membership_.tick(t, clocks_.times(), active_);
  participating_ = std::move(d.participating);
  if (d.misses > 0) {
    recovery_.heartbeat_misses += d.misses;
    obs_.count("recovery.heartbeat_misses", d.misses);
  }
  for (std::size_t r : d.suspected) {
    ++recovery_.suspicions;
    obs_.count("recovery.suspicions");
    obs_.instant(obs::kMainTrack, "membership.suspect", "membership",
                 {{"rank", r}, {"iteration", t}});
  }
  for (std::size_t r : d.excluded) {
    ++recovery_.deadline_exclusions;
    obs_.count("recovery.deadline_exclusions");
    obs_.instant(obs::kMainTrack, "membership.exclude", "membership",
                 {{"rank", r}, {"iteration", t}});
  }
  if (d.waited_for > 0) {
    // Ladder rung 1: the group stalls at the barrier for the full deadline
    // before continuing without the absentees (one wait per step).
    recovery_.deadline_waits += d.waited_for;
    obs_.count("recovery.deadline_waits", d.waited_for);
    clocks_.sync_advance_masked(membership_.config().straggler_deadline_s,
                                participating_);
  }
  for (std::size_t r : d.evicted) {
    if (active_count() > 1) {
      evict(r);
    }
    // Last-rank guard: an unevictable suspect keeps being probed; the
    // ladder retries on subsequent ticks.
  }
  for (std::size_t r : d.redeemed) {
    obs_.instant(obs::kMainTrack, "membership.redeem", "membership",
                 {{"rank", r}, {"iteration", t}});
  }
  for (std::size_t r : d.readmitted) {
    readmit_at(r, t);
  }
  rejoining_.clear();
  for (std::size_t r = 0; r < active_.size(); ++r) {
    if (membership_.phase(r) == RankPhase::kRejoining) rejoining_.push_back(r);
  }
}

CollectiveAlgo Communicator::allreduce_algo(std::size_t bytes)
    const noexcept {
  return select_allreduce_algo(coll_, topo_, net_, participant_count(),
                               bytes);
}

CollectiveAlgo Communicator::allgather_algo(std::size_t bytes)
    const noexcept {
  return select_algo(coll_, topo_, participant_count(), bytes);
}

CollectiveAlgo Communicator::broadcast_algo(std::size_t bytes)
    const noexcept {
  // The legacy broadcast model is already the hierarchical binomial; with
  // selection off it stays the default (not ring, unlike the reduce
  // family).
  if (!coll_.auto_select) return CollectiveAlgo::kHierarchical;
  const CollectiveAlgo algo = select_algo(coll_, topo_, participant_count(),
                                          bytes);
  return algo == CollectiveAlgo::kRing ? CollectiveAlgo::kHierarchical : algo;
}

double Communicator::allreduce_time(std::size_t bytes) const noexcept {
  // With selection off this is the legacy flat-ring formula bit for bit
  // (comm::allreduce_time(kRing, ...) reproduces it exactly).
  return comm::allreduce_time(allreduce_algo(bytes), topo_, net_,
                              participant_count(), bytes);
}

double Communicator::allgather_time(std::size_t bytes_per_rank)
    const noexcept {
  return comm::allgather_time(allgather_algo(bytes_per_rank), topo_, net_,
                              participant_count(), bytes_per_rank);
}

double Communicator::allgatherv_time(
    std::span<const std::size_t> bytes_per_rank) const noexcept {
  std::size_t total = 0;
  for (std::size_t b : bytes_per_rank) total += b;
  return comm::allgatherv_time(allgather_algo(total), topo_, net_,
                               participant_count(), bytes_per_rank);
}

double Communicator::broadcast_time(std::size_t bytes) const noexcept {
  return comm::broadcast_time(broadcast_algo(bytes), topo_, net_,
                              participant_count(), bytes);
}

double Communicator::reduce_time(std::size_t bytes) const noexcept {
  return comm::reduce_time(allreduce_algo(bytes), topo_, net_,
                           participant_count(), bytes);
}

double Communicator::pipelined_broadcast_time(std::size_t bytes)
    const noexcept {
  const std::size_t p = participant_count();
  if (p <= 1 || bytes == 0) return 0.0;
  const LinkParams link = ring_bottleneck();
  const auto rounds = static_cast<double>(std::bit_width(p - 1));
  return rounds * link.latency_s +
         static_cast<double>(bytes) / link.bandwidth_Bps;
}

double Communicator::reduce_scatter_time(std::size_t bytes) const noexcept {
  const std::size_t p = participant_count();
  if (p <= 1 || bytes == 0) return 0.0;
  const LinkParams link = ring_bottleneck();
  const double pd = static_cast<double>(p);
  const double wire_bytes = (pd - 1.0) / pd * static_cast<double>(bytes);
  return (pd - 1.0) * link.latency_s + wire_bytes / link.bandwidth_Bps;
}

void Communicator::allreduce_sum(std::vector<std::span<float>> bufs) {
  if (bufs.size() != world_size()) {
    throw std::invalid_argument("allreduce_sum: need one buffer per rank");
  }
  const std::size_t lead = first_participant();
  const std::size_t n = bufs[lead].size();
  for (std::size_t r = 0; r < bufs.size(); ++r) {
    if (is_participating(r) && bufs[r].size() != n) {
      throw std::invalid_argument("allreduce_sum: buffer size mismatch");
    }
  }
  const CollectiveAlgo algo = allreduce_algo(n * sizeof(float));
  ++algo_stats_.allreduce[static_cast<std::size_t>(algo)];
  if (algo == CollectiveAlgo::kRing) {
    // Functional: sum participating ranks into the lead participant's view,
    // then replicate to the other participants. Evicted and step-excluded
    // ranks neither contribute nor receive (renormalized averages). This is
    // the canonical reduction every other algorithm reproduces bitwise.
    for (std::size_t r = lead + 1; r < bufs.size(); ++r) {
      if (!is_participating(r)) continue;
      for (std::size_t i = 0; i < n; ++i) bufs[lead][i] += bufs[r][i];
    }
    for (std::size_t r = 0; r < bufs.size(); ++r) {
      if (r == lead || !is_participating(r)) continue;
      std::copy(bufs[lead].begin(), bufs[lead].end(), bufs[r].begin());
    }
  } else {
    // Selected algorithm moves the bytes along its real routing structure;
    // the reduction order is canonicalized, so the result is byte-identical
    // to the ring path (DESIGN.md §16).
    run_allreduce(algo, topo_, bufs, participating_);
  }
  const double dt = allreduce_time(n * sizeof(float));
  clocks_.sync_advance_masked(dt, participating_);
  stats_.allreduce_s += dt;
  stats_.allreduce_bytes += n * sizeof(float);
  record_collective("allreduce", dt, n * sizeof(float));
}

void Communicator::reduce_sum(std::vector<std::span<float>> bufs,
                              std::size_t root) {
  if (bufs.size() != world_size() || root >= world_size()) {
    throw std::invalid_argument("reduce_sum: bad arguments");
  }
  if (!is_participating(root)) {
    throw std::invalid_argument("reduce_sum: root is not participating");
  }
  const std::size_t n = bufs[root].size();
  for (std::size_t r = 0; r < bufs.size(); ++r) {
    if (is_participating(r) && bufs[r].size() != n) {
      throw std::invalid_argument("reduce_sum: buffer size mismatch");
    }
  }
  run_reduce(bufs, root, participating_);
  const CollectiveAlgo algo = allreduce_algo(n * sizeof(float));
  ++algo_stats_.reduce[static_cast<std::size_t>(algo)];
  const double dt = reduce_time(n * sizeof(float));
  clocks_.sync_advance_masked(dt, participating_);
  // Rides the allreduce row: the sharded factor exchange replaces a
  // factor allreduce, and obs/CommStats reconciliation stays one-to-one.
  stats_.allreduce_s += dt;
  stats_.allreduce_bytes += n * sizeof(float);
  record_collective("allreduce", dt, n * sizeof(float));
}

void Communicator::allgather(const std::vector<std::vector<float>>& send,
                             std::vector<std::vector<float>>& recv) {
  if (send.size() != world_size()) {
    throw std::invalid_argument("allgather: need one buffer per rank");
  }
  std::vector<float> gathered;
  std::size_t max_chunk = 0;
  for (std::size_t r = 0; r < send.size(); ++r) {
    if (!is_participating(r)) continue;
    gathered.insert(gathered.end(), send[r].begin(), send[r].end());
    max_chunk = std::max(max_chunk, send[r].size());
  }
  recv.assign(world_size(), {});
  for (std::size_t r = 0; r < world_size(); ++r) {
    if (is_participating(r)) recv[r] = gathered;
  }
  ++algo_stats_.allgather[static_cast<std::size_t>(
      allgather_algo(max_chunk * sizeof(float)))];
  const double dt = allgather_time(max_chunk * sizeof(float));
  clocks_.sync_advance_masked(dt, participating_);
  stats_.allgather_s += dt;
  const std::uint64_t bytes =
      (gathered.size() - (send.empty() ? 0 : send[0].size())) * sizeof(float);
  stats_.allgather_bytes += bytes;
  record_collective("allgather", dt, bytes);
}

void Communicator::allgatherv(
    const std::vector<std::vector<std::uint8_t>>& send,
    std::vector<std::vector<std::uint8_t>>& recv) {
  if (send.size() != world_size()) {
    throw std::invalid_argument("allgatherv: need one buffer per rank");
  }
  std::vector<std::uint8_t> gathered;
  std::vector<std::size_t> sizes;
  sizes.reserve(send.size());
  std::size_t total_bytes = 0;
  for (std::size_t r = 0; r < send.size(); ++r) {
    if (is_participating(r)) total_bytes += send[r].size();
  }
  gathered.reserve(total_bytes);  // one allocation for the whole stream.
  for (std::size_t r = 0; r < send.size(); ++r) {
    if (!is_participating(r)) continue;
    if (injector_ == nullptr) {
      // Fast path: no per-entry fault hooks, so append without the
      // intermediate chunk copy.
      gathered.insert(gathered.end(), send[r].begin(), send[r].end());
      sizes.push_back(send[r].size());
      continue;
    }
    std::vector<std::uint8_t> chunk = send[r];
    if (injector_ != nullptr) {
      // Per-entry transport faults, consumed one-shot so a retried
      // collective in the same iteration sees clean data.
      if (injector_->take(FaultKind::kCorruptPayload, r)) {
        injector_->corrupt_payload(chunk);
        ++recovery_.corrupt_injected;
        obs_.count("recovery.corrupt_injected");
      }
      if (injector_->take(FaultKind::kTruncateEntry, r)) {
        injector_->truncate_payload(chunk);
        ++recovery_.truncations_injected;
        obs_.count("recovery.truncations_injected");
      }
      if (injector_->take(FaultKind::kDropEntry, r)) {
        chunk.clear();
        ++recovery_.drops_injected;
        obs_.count("recovery.drops_injected");
      }
    }
    gathered.insert(gathered.end(), chunk.begin(), chunk.end());
    sizes.push_back(send[r].size());
  }
  if (fault_) fault_(gathered);
  recv.assign(world_size(), {});
  for (std::size_t r = 0; r < world_size(); ++r) {
    if (is_participating(r)) recv[r] = gathered;
  }
  ++algo_stats_.allgather[static_cast<std::size_t>(
      allgather_algo(total_bytes))];
  const double dt = allgatherv_time(sizes);
  clocks_.sync_advance_masked(dt, participating_);
  stats_.allgather_s += dt;
  stats_.allgather_bytes += gathered.size();
  record_collective("allgather", dt, gathered.size());
}

void Communicator::allgatherv_chunks(
    const std::vector<std::span<const std::uint8_t>>& send,
    std::vector<std::vector<std::uint8_t>>& recv, std::size_t round) {
  if (send.size() != world_size()) {
    throw std::invalid_argument("allgatherv_chunks: need one frame per rank");
  }
  std::vector<std::size_t> sizes;
  sizes.reserve(send.size());
  recv.assign(world_size(), {});
  std::uint64_t delivered = 0;
  for (std::size_t r = 0; r < send.size(); ++r) {
    if (!is_participating(r)) continue;
    // Intended (pre-fault) sizes drive the wire time, matching allgatherv.
    sizes.push_back(send[r].size());
    std::vector<std::uint8_t> frame(send[r].begin(), send[r].end());
    if (injector_ != nullptr && !frame.empty()) {
      // Chunk-scoped one-shot faults, matched on this round's index, so a
      // per-chunk retry of the same round sees clean data.
      if (injector_->take_chunk(FaultKind::kCorruptPayload, r, round)) {
        injector_->corrupt_payload(frame);
        ++recovery_.corrupt_injected;
        obs_.count("recovery.corrupt_injected");
      }
      if (injector_->take_chunk(FaultKind::kTruncateEntry, r, round)) {
        injector_->truncate_payload(frame);
        ++recovery_.truncations_injected;
        obs_.count("recovery.truncations_injected");
      }
      if (injector_->take_chunk(FaultKind::kDropEntry, r, round)) {
        frame.clear();
        ++recovery_.drops_injected;
        obs_.count("recovery.drops_injected");
      }
    }
    delivered += frame.size();
    recv[r] = std::move(frame);
  }
  std::size_t intended = 0;
  for (std::size_t b : sizes) intended += b;
  ++algo_stats_.allgather[static_cast<std::size_t>(allgather_algo(intended))];
  const double dt = allgatherv_time(sizes);
  clocks_.sync_advance_masked(dt, participating_);
  stats_.allgather_s += dt;
  stats_.allgather_bytes += delivered;
  record_collective("allgather", dt, delivered);
  obs_.count("chunk.rounds");
  obs_.count("chunk.bytes", delivered);
}

void Communicator::broadcast(std::vector<std::span<float>> bufs,
                             std::size_t root) {
  if (bufs.size() != world_size() || root >= world_size()) {
    throw std::invalid_argument("broadcast: bad arguments");
  }
  if (!is_participating(root)) {
    throw std::invalid_argument("broadcast: root has been evicted");
  }
  const auto src = bufs[root];
  for (std::size_t r = 0; r < bufs.size(); ++r) {
    if (r == root || !is_participating(r)) continue;
    if (bufs[r].size() != src.size()) {
      throw std::invalid_argument("broadcast: buffer size mismatch");
    }
  }
  const CollectiveAlgo algo = broadcast_algo(src.size() * sizeof(float));
  ++algo_stats_.broadcast[static_cast<std::size_t>(algo)];
  // Delivery follows the selected algorithm's edges (chain / binomial /
  // leader two-level); a broadcast only copies, so every algorithm is
  // trivially byte-identical.
  run_broadcast(algo, topo_, bufs, root, participating_);
  const double dt = broadcast_time(src.size() * sizeof(float));
  clocks_.sync_advance_masked(dt, participating_);
  stats_.broadcast_s += dt;
  record_collective("broadcast", dt, src.size() * sizeof(float));
}

void Communicator::reduce_scatter_sum(std::vector<std::vector<float>>& bufs) {
  const std::size_t p = world_size();
  if (bufs.size() != p) {
    throw std::invalid_argument("reduce_scatter_sum: need one buffer per rank");
  }
  const std::size_t n = bufs.empty() ? 0 : bufs[0].size();
  if (n % p != 0) {
    throw std::invalid_argument(
        "reduce_scatter_sum: length must divide by world size");
  }
  for (const auto& b : bufs) {
    if (b.size() != n) {
      throw std::invalid_argument("reduce_scatter_sum: size mismatch");
    }
  }
  std::vector<float> sum(bufs[0]);
  for (std::size_t r = 1; r < p; ++r) {
    for (std::size_t i = 0; i < n; ++i) sum[i] += bufs[r][i];
  }
  const std::size_t chunk = n / p;
  for (std::size_t r = 0; r < p; ++r) {
    bufs[r].assign(sum.begin() + static_cast<std::ptrdiff_t>(r * chunk),
                   sum.begin() + static_cast<std::ptrdiff_t>((r + 1) * chunk));
  }
  const double dt = reduce_scatter_time(n * sizeof(float));
  clocks_.sync_advance(dt);
  stats_.reduce_scatter_s += dt;
  record_collective("reduce_scatter", dt, n * sizeof(float));
}

void Communicator::broadcast_bytes(
    std::vector<std::vector<std::uint8_t>>& bufs, std::size_t root) {
  if (bufs.size() != world_size() || root >= world_size()) {
    throw std::invalid_argument("broadcast_bytes: bad arguments");
  }
  if (!is_participating(root)) {
    throw std::invalid_argument("broadcast_bytes: root has been evicted");
  }
  // Faults hit the delivered copy, never the root's own buffer — exactly a
  // corrupting wire. The KFAC inverse-factor broadcast path goes through
  // here, so it is fault-testable like the allgatherv path.
  std::vector<std::uint8_t> delivered = bufs[root];
  if (injector_ != nullptr) {
    if (injector_->take(FaultKind::kCorruptPayload, root)) {
      injector_->corrupt_payload(delivered);
      ++recovery_.corrupt_injected;
      obs_.count("recovery.corrupt_injected");
    }
    if (injector_->take(FaultKind::kTruncateEntry, root)) {
      injector_->truncate_payload(delivered);
      ++recovery_.truncations_injected;
      obs_.count("recovery.truncations_injected");
    }
  }
  if (fault_) fault_(delivered);
  for (std::size_t r = 0; r < bufs.size(); ++r) {
    if (r != root && is_participating(r)) bufs[r] = delivered;
  }
  ++algo_stats_.broadcast[static_cast<std::size_t>(
      broadcast_algo(bufs[root].size()))];
  const double dt = broadcast_time(bufs[root].size());
  clocks_.sync_advance_masked(dt, participating_);
  stats_.broadcast_s += dt;
  record_collective("broadcast", dt, bufs[root].size());
}

}  // namespace compso::comm
