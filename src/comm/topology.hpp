#pragma once
// Cluster topology: nodes x GPUs-per-node, rank <-> (node, local gpu) maps.

#include <cstddef>

namespace compso::comm {

/// Flat description of the simulated cluster. Ranks are numbered
/// node-major: rank = node * gpus_per_node + local.
struct Topology {
  std::size_t nodes = 1;
  std::size_t gpus_per_node = 4;

  std::size_t world_size() const noexcept { return nodes * gpus_per_node; }
  std::size_t node_of(std::size_t rank) const noexcept {
    return rank / gpus_per_node;
  }
  std::size_t local_of(std::size_t rank) const noexcept {
    return rank % gpus_per_node;
  }
  bool same_node(std::size_t a, std::size_t b) const noexcept {
    return node_of(a) == node_of(b);
  }

  /// Topology with the given total GPU count, packing 4 GPUs per node
  /// (the paper's node configuration) unless fewer GPUs are requested.
  /// Zero GPUs (or a zero per-node packing) clamps to the minimal 1x1
  /// topology: `gpus_per_node` would otherwise become 0 and the node
  /// count would divide by it.
  static Topology with_gpus(std::size_t gpus, std::size_t per_node = 4) {
    Topology t;
    if (gpus == 0 || per_node == 0) {
      t.gpus_per_node = 1;
      t.nodes = 1;
      return t;
    }
    t.gpus_per_node = gpus < per_node ? gpus : per_node;
    t.nodes = (gpus + t.gpus_per_node - 1) / t.gpus_per_node;
    return t;
  }
};

}  // namespace compso::comm
