#pragma once
// Alpha-beta (latency + bandwidth) network cost model with a two-level
// hierarchy: NVLink inside a node, an interconnect (Slingshot 10/11 in the
// paper's platforms) between nodes.
//
// This is the substitution for the paper's physical clusters: every
// communication time reported by the simulator is computed from these
// parameters, so relative speedups depend only on message sizes, collective
// algorithms, and link speeds — the same terms that drive the paper's
// measurements.

#include "src/comm/topology.hpp"

#include <cstddef>
#include <string>

namespace compso::comm {

/// One link class: startup latency (s) and bandwidth (bytes/s).
struct LinkParams {
  double latency_s = 0.0;
  double bandwidth_Bps = 0.0;

  /// Time to move `bytes` across this link.
  double transfer_time(std::size_t bytes) const noexcept {
    return latency_s + static_cast<double>(bytes) / bandwidth_Bps;
  }
};

/// Hierarchical network: intra-node (NVLink) + inter-node (NIC) links.
/// `nic_share` models how many GPU ranks of a node can be pumping the NIC
/// concurrently during a collective step (effective per-rank bandwidth =
/// inter.bandwidth / active sharers).
class NetworkModel {
 public:
  NetworkModel(std::string name, LinkParams intra, LinkParams inter)
      : name_(std::move(name)), intra_(intra), inter_(inter) {}

  const std::string& name() const noexcept { return name_; }
  const LinkParams& intra_node() const noexcept { return intra_; }
  const LinkParams& inter_node() const noexcept { return inter_; }

  /// Point-to-point time between two ranks under `topo`, with `sharers`
  /// ranks of the same node concurrently using the NIC (>= 1).
  double p2p_time(const Topology& topo, std::size_t src, std::size_t dst,
                  std::size_t bytes, std::size_t sharers = 1) const noexcept;

  /// --- Paper Platform presets (§5, "Platforms") ---
  /// Platform 1: 16 nodes, 4xA100/node, Slingshot 10 (100 Gbps).
  static NetworkModel platform1();
  /// Platform 2: 64 nodes, 4xA100/node, Slingshot 11 (200 Gbps).
  static NetworkModel platform2();

 private:
  std::string name_;
  LinkParams intra_;
  LinkParams inter_;
};

/// Makespan of a 3-stage chunk pipeline (compress -> wire -> decode), each
/// stage taking the given per-chunk time: the first chunk pays the full
/// serial fill (a + b + c), and every further chunk adds one beat of the
/// slowest stage. This is the analytic model the chunked transport and the
/// PerfSimulator both use, so they agree by construction (DESIGN.md §15).
double chunk_pipeline_makespan(std::size_t chunks, double compress_s,
                               double wire_s, double decode_s) noexcept;

}  // namespace compso::comm
