#include "src/comm/membership.hpp"

#include <algorithm>
#include <limits>

namespace compso::comm {
namespace {

void put_u8(std::vector<std::uint8_t>& out, std::uint8_t v) {
  out.push_back(v);
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

}  // namespace

const char* to_string(RankPhase phase) noexcept {
  switch (phase) {
    case RankPhase::kHealthy: return "healthy";
    case RankPhase::kSuspect: return "suspect";
    case RankPhase::kEvicted: return "evicted";
    case RankPhase::kRejoining: return "rejoining";
  }
  return "unknown";
}

Membership::Membership(std::size_t world) : rs_(world) {}

void Membership::set_alive(std::size_t rank, bool alive) noexcept {
  if (rank < rs_.size()) rs_[rank].alive = alive ? 1 : 0;
}

void Membership::silence(std::size_t rank, std::size_t t,
                         std::size_t duration) noexcept {
  if (rank < rs_.size()) {
    rs_[rank].silenced_until =
        std::max<std::uint64_t>(rs_[rank].silenced_until, t + duration);
  }
}

bool Membership::alive(std::size_t rank) const noexcept {
  return rank < rs_.size() && rs_[rank].alive != 0;
}

bool Membership::heartbeat_visible(std::size_t rank,
                                   std::size_t t) const noexcept {
  return rank < rs_.size() && rs_[rank].alive != 0 &&
         t >= rs_[rank].silenced_until;
}

RankPhase Membership::phase(std::size_t rank) const noexcept {
  return rank < rs_.size() ? rs_[rank].phase : RankPhase::kEvicted;
}

std::uint64_t Membership::misses(std::size_t rank) const noexcept {
  return rank < rs_.size() ? rs_[rank].misses : 0;
}

void Membership::mark_evicted(std::size_t rank) noexcept {
  if (rank >= rs_.size()) return;
  rs_[rank].phase = RankPhase::kEvicted;
  rs_[rank].stale = 1;
}

void Membership::mark_rejoining(std::size_t rank, std::size_t t) noexcept {
  if (rank >= rs_.size()) return;
  auto& st = rs_[rank];
  st.phase = RankPhase::kRejoining;
  st.rejoin_iter = t;
  st.misses = 0;
  st.strikes = 0;
  st.probes_failed = 0;
  st.probe_interval = 0;
  st.next_probe = 0;
}

void Membership::mark_healthy(std::size_t rank) noexcept {
  if (rank >= rs_.size()) return;
  auto& st = rs_[rank];
  st.phase = RankPhase::kHealthy;
  st.stale = 0;
  st.misses = 0;
  st.strikes = 0;
  st.probes_failed = 0;
  st.probe_interval = 0;
  st.next_probe = 0;
}

MembershipDecisions Membership::tick(std::size_t t,
                                     std::span<const double> clock_times,
                                     const std::vector<std::uint8_t>& active) {
  const std::size_t world = rs_.size();
  MembershipDecisions d;
  d.participating.assign(world, 0);

  // Promote ranks that completed their resync step in iteration t-1. This
  // must happen before anything else so a restore mid-rejoin continues the
  // identical schedule: the rejoiner participates from the tick after its
  // rejoin_iter, whether or not a save/restore happened in between.
  for (std::size_t r = 0; r < world; ++r) {
    if (rs_[r].phase == RankPhase::kRejoining && t > rs_[r].rejoin_iter) {
      mark_healthy(r);
    }
  }

  // Externally evicted ranks (mask edits outside the ladder) are folded in
  // so the ledger never disagrees with the group mask.
  for (std::size_t r = 0; r < world; ++r) {
    if (r < active.size() && active[r] == 0 &&
        rs_[r].phase != RankPhase::kEvicted) {
      mark_evicted(r);
    }
  }

  // Arrival reference: the earliest clock among the ranks expected to show
  // up at this step's barrier. Participants march in lockstep (collectives
  // synchronize them), so a straggler's lag over this reference is exactly
  // how late it arrives.
  double ref = std::numeric_limits<double>::infinity();
  for (std::size_t r = 0; r < world; ++r) {
    if (r < active.size() && active[r] != 0 && rs_[r].alive != 0 &&
        rs_[r].phase == RankPhase::kHealthy) {
      ref = std::min(ref, clock_times[r]);
    }
  }
  if (ref == std::numeric_limits<double>::infinity()) {
    for (std::size_t r = 0; r < world; ++r) {
      if (r < active.size() && active[r] != 0 && rs_[r].alive != 0) {
        ref = std::min(ref, clock_times[r]);
      }
    }
  }
  if (ref == std::numeric_limits<double>::infinity()) ref = 0.0;

  for (std::size_t r = 0; r < world; ++r) {
    auto& st = rs_[r];
    const bool hb = heartbeat_visible(r, t);
    if (hb) st.last_heartbeat = t;
    const bool in_group = r < active.size() && active[r] != 0;

    if (!in_group) {
      // Evicted: the only way back is a heartbeat, which starts the
      // readmit + rejoin ladder (the Communicator applies the mask flip).
      if (st.phase == RankPhase::kEvicted && hb) d.readmitted.push_back(r);
      continue;
    }

    // A rank arrives at the barrier iff it is physically running and within
    // the deadline of the group's front. Death is visible here only as
    // absence — the *decision* ladder below runs on heartbeats alone.
    const bool arrived =
        st.alive != 0 && clock_times[r] - ref <= cfg_.straggler_deadline_s;

    switch (st.phase) {
      case RankPhase::kHealthy: {
        if (hb) {
          st.misses = 0;
        } else {
          ++st.misses;
          ++d.misses;
          if (st.misses >= cfg_.suspect_after_misses) {
            st.phase = RankPhase::kSuspect;
            st.probes_failed = 0;
            st.probe_interval = cfg_.probe_backoff_initial;
            st.next_probe = t + st.probe_interval;
            d.suspected.push_back(r);
            break;  // newly suspect: excluded below, nobody waits.
          }
        }
        if (arrived) {
          if (st.stale != 0) {
            // Came back from an excluded step: must resync before it may
            // contribute again (its replica missed collective updates).
            mark_rejoining(r, t);
            d.redeemed.push_back(r);
          } else {
            st.strikes = 0;
            d.participating[r] = 1;
          }
        } else {
          // Ladder rungs 1+2: everyone waits out the deadline, then the
          // step continues without this rank (renormalized averages).
          st.stale = 1;
          ++d.waited_for;
          d.excluded.push_back(r);
          if (st.alive != 0) {
            ++st.strikes;
            if (st.strikes >= cfg_.straggle_suspect_after) {
              st.phase = RankPhase::kSuspect;
              st.probes_failed = 0;
              st.probe_interval = cfg_.probe_backoff_initial;
              st.next_probe = t + st.probe_interval;
              d.suspected.push_back(r);
            }
          }
        }
        break;
      }
      case RankPhase::kSuspect: {
        if (hb && arrived) {
          mark_rejoining(r, t);
          d.redeemed.push_back(r);
          break;
        }
        if (t >= st.next_probe) {
          ++st.probes_failed;
          if (st.probes_failed >= cfg_.evict_after_probes) {
            d.evicted.push_back(r);
          } else {
            st.probe_interval *= cfg_.probe_backoff_factor;
            st.next_probe = t + st.probe_interval;
          }
        }
        break;
      }
      case RankPhase::kRejoining:
        // Resync step in flight: sits this step out; promoted next tick.
        break;
      case RankPhase::kEvicted:
        // Mask says active but ledger says evicted — mask-driven
        // reactivation without the rejoin ladder; treat as healthy-absent
        // until the next heartbeat settles it.
        break;
    }
  }

  // The group must keep at least one participant (mirrors evict()'s
  // last-rank guard): fall back to the first active rank if the ladder
  // excluded everyone.
  bool any = false;
  for (auto p : d.participating) any = any || p != 0;
  if (!any) {
    for (std::size_t r = 0; r < world; ++r) {
      if (r < active.size() && active[r] != 0) {
        d.participating[r] = 1;
        break;
      }
    }
  }
  return d;
}

void Membership::serialize(std::vector<std::uint8_t>& out) const {
  put_u64(out, rs_.size());
  for (const auto& st : rs_) {
    put_u8(out, static_cast<std::uint8_t>(st.phase));
    put_u8(out, st.alive);
    put_u8(out, st.stale);
    put_u64(out, st.silenced_until);
    put_u64(out, st.misses);
    put_u64(out, st.strikes);
    put_u64(out, st.probes_failed);
    put_u64(out, st.probe_interval);
    put_u64(out, st.next_probe);
    put_u64(out, st.last_heartbeat);
    put_u64(out, st.rejoin_iter);
  }
}

void Membership::deserialize(codec::wire::Reader& reader) {
  const auto count = reader.bounded_u64(1 << 20, "membership ranks");
  if (count != rs_.size()) {
    throw PayloadError("membership: rank count mismatch");
  }
  for (auto& st : rs_) {
    const auto phase = reader.u8();
    if (phase > static_cast<std::uint8_t>(RankPhase::kRejoining)) {
      throw PayloadError("membership: bad rank phase");
    }
    st.phase = static_cast<RankPhase>(phase);
    st.alive = reader.u8();
    st.stale = reader.u8();
    st.silenced_until = reader.u64();
    st.misses = reader.u64();
    st.strikes = reader.u64();
    st.probes_failed = reader.u64();
    st.probe_interval = reader.u64();
    st.next_probe = reader.u64();
    st.last_heartbeat = reader.u64();
    st.rejoin_iter = reader.u64();
  }
}

}  // namespace compso::comm
