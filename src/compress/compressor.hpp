#pragma once
// Gradient compressor interface and the method zoo evaluated in the paper:
// COMPSO (ours), QSGD, SZ (cuSZ's algorithm), CocktailSGD, Top-k, identity.
//
// A compressor turns an FP32 gradient buffer into a self-delimiting byte
// payload and back. Compression may be lossy; `compress` takes the Rng that
// drives stochastic rounding / random sampling so runs are reproducible.
// Each compressor also describes its GPU execution shape so gpusim can
// model (de)compression throughput (Fig. 8) under fused-CUDA or
// PyTorch-style dispatch.

#include "src/codec/codec.hpp"
#include "src/gpusim/device_model.hpp"
#include "src/tensor/rng.hpp"

#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace compso::compress {

using codec::ByteView;
using codec::Bytes;

/// GPU execution shape of a compressor's lossy stage + encoder.
struct GpuProfile {
  std::size_t stages = 3;               ///< logical pipeline stages.
  double flops_per_byte = 4.0;
  double bandwidth_efficiency = 0.8;    ///< divergence / atomics / lookups.
  gpusim::Dispatch dispatch = gpusim::Dispatch::kFusedKernel;
  std::size_t framework_ops_per_stage = 4;
  double memory_passes = 1.0;           ///< input sweeps even when fused.
};

class GradientCompressor {
 public:
  virtual ~GradientCompressor() = default;

  virtual std::string_view name() const noexcept = 0;

  /// Compresses `values`; the payload embeds everything needed to decode.
  virtual Bytes compress(std::span<const float> values,
                         tensor::Rng& rng) const = 0;

  /// Decompresses a payload produced by this compressor. Payloads are
  /// wire-format v1 frames (see DESIGN.md "Payload format v1"): the header
  /// (magic, version, CRC) and every embedded length/width field are
  /// validated before any allocation; malformed or corrupted input throws
  /// compso::PayloadError and never reads out of bounds.
  virtual std::vector<float> decompress(ByteView payload) const = 0;

  /// compress() into a caller-owned buffer: `out` is cleared and refilled
  /// with the identical payload bytes, reusing its capacity. The fused
  /// COMPSO path overrides this to make steady-state compression
  /// allocation-free; the default delegates to compress().
  virtual void compress_into(std::span<const float> values, tensor::Rng& rng,
                             Bytes& out) const {
    out = compress(values, rng);
  }

  /// decompress() into a caller-owned buffer (same values; capacity
  /// reused). Default delegates to decompress().
  virtual void decompress_into(ByteView payload,
                               std::vector<float>& out) const {
    out = decompress(payload);
  }

  /// GPU execution shape (see GpuProfile).
  virtual GpuProfile gpu_profile() const noexcept = 0;

  /// Upper bound on compress()'s payload size for `values` elements. The
  /// chunked streaming pipeline pre-grows its wire buffers to
  /// wire_bytes_for(max_payload_bytes(n)) once, so per-step payload-size
  /// jitter (stochastic rounding changes the codec output a little every
  /// step) never re-allocates in steady state. The default is a loose
  /// generic bound; COMPSO overrides it with the exact per-blob worst
  /// case so the reserve is sized per chunk, not per-payload slop.
  virtual std::size_t max_payload_bytes(std::size_t values) const noexcept {
    // Generic ceiling: header + fixed fields + 10 bytes/element covers
    // every baseline (identity 4 B/elem, top-k 8 B/elem + indices, Elias
    // gamma's worst expansion before the stored-mode fallback caps it).
    return codec::wire::kHeaderSize + 64 + values * 10;
  }

  /// Stream-aware compress_into. A *stream* names one logical payload
  /// slot that persists across steps — DistSgd uses slot*world+rank,
  /// DistKfac's gather path uses (owner rank, first owned slot) — so
  /// stateful compressors (error-feedback residuals, sketch seed
  /// counters) can key their cross-step state without caring which pool
  /// thread runs the task. Stateless compressors ignore the stream and
  /// delegate to compress_into. Concurrent calls on *distinct* streams
  /// must be safe; calls on the same stream are serialized by the step
  /// graph (one compute task per stream per step).
  virtual void compress_stream_into(std::uint64_t stream,
                                    std::span<const float> values,
                                    tensor::Rng& rng, Bytes& out) const {
    (void)stream;
    compress_into(values, rng, out);
  }

  /// Recovery-ladder hook: the payload most recently produced on
  /// `stream` was abandoned (decode-retry ladder exhausted, transport
  /// fell back to uncompressed). Stateful compressors roll back any
  /// state the abandoned compression mutated — the EF wrapper restores
  /// the pre-compress residual so gradient mass the fallback already
  /// delivered uncompressed is not re-sent next step. Default: no-op.
  virtual void notify_fallback(std::uint64_t stream) const noexcept {
    (void)stream;
  }

  /// Membership hook: drop any cross-step state held for `stream`
  /// (rank evicted, or a rejoiner resyncing from a snapshot that never
  /// saw the stream). Default: no-op.
  virtual void reset_stream(std::uint64_t stream) const noexcept {
    (void)stream;
  }

  /// Expected compressed-size ratio achieved on `values` (measured).
  double compression_ratio(std::span<const float> values,
                           tensor::Rng& rng) const;

  /// Modeled GPU compression throughput in bytes/s for an input of
  /// `input_bytes` producing `output_bytes`.
  double modeled_throughput(const gpusim::DeviceModel& dev,
                            std::size_t input_bytes,
                            std::size_t output_bytes) const noexcept;
};

/// Cross-step compressor state that must survive checkpoint save/resume.
/// ErrorFeedbackCompressor (per-stream residuals) and the sketch family
/// (per-stream seed counters) implement this alongside GradientCompressor;
/// FaultTolerantTrainer dynamic_casts its compressor and, when this
/// interface is present, checkpoints the serialized state as its own
/// versioned CKPT section ("compressor", DESIGN.md §17).
class StatefulCompressor {
 public:
  virtual ~StatefulCompressor() = default;

  /// Appends a self-delimiting versioned state blob to `out`. The
  /// encoding is deterministic (streams in sorted id order) so two
  /// bit-identical trainers serialize bit-identical state regardless of
  /// the thread interleaving that created the streams.
  virtual void serialize_state(Bytes& out) const = 0;

  /// Restores state written by serialize_state, replacing any current
  /// state. Validates the blob's magic/version and every embedded count
  /// against the remaining bytes; malformed input throws
  /// compso::PayloadError and leaves no partially-applied state behind.
  virtual void deserialize_state(codec::wire::Reader& reader) = 0;

  /// Drops all cross-step state (fresh-start semantics).
  virtual void reset_state() = 0;
};

/// --- concrete compressor configs ---

/// COMPSO (§4.3, Alg. 1): filter + bitmap + error-bounded SR + encoder.
struct CompsoParams {
  double filter_bound = 4e-3;     ///< eb_f, relative to abs-max; 0 disables.
  double quant_bound = 4e-3;      ///< eb_q, relative to abs-max.
  codec::CodecKind encoder = codec::CodecKind::kAns;
  bool use_filter = true;         ///< false = conservative SR-only mode.
};

std::unique_ptr<GradientCompressor> make_compso(const CompsoParams& params);

/// The pre-fusion multi-pass COMPSO pipeline (name "COMPSO-unfused"),
/// kept as the bit-exactness oracle for tests and the baseline for the
/// compressor throughput benches. For any fixed Rng state it produces
/// byte-identical payloads to make_compso's fused path.
std::unique_ptr<GradientCompressor> make_compso_reference(
    const CompsoParams& params);

/// QSGD: fixed n-bit SR quantization + Elias gamma coding.
std::unique_ptr<GradientCompressor> make_qsgd(unsigned bits);

/// SZ algorithm (cuSZ): 1-D Lorenzo prediction + RN error-bounded
/// quantization + Huffman.
std::unique_ptr<GradientCompressor> make_sz(double relative_error_bound);

/// CocktailSGD: seeded random sampling to `keep_fraction` + n-bit SR
/// quantization (shared-seed sampling means no index transmission,
/// giving the paper's constant ~20x ratio at 20% / 8-bit).
std::unique_ptr<GradientCompressor> make_cocktail(double keep_fraction,
                                                  unsigned bits);

/// Top-k magnitude sparsification with explicit indices (ablation baseline).
std::unique_ptr<GradientCompressor> make_topk(double keep_fraction);

/// Identity (no compression) — the paper's "KFAC (No Comp.)" baseline.
std::unique_ptr<GradientCompressor> make_identity();

/// Error-feedback wrapper over any compressor (DESIGN.md §17): sends
/// C(g + e), keeps e' = (g + e) - decode(C(g + e)) per stream. The
/// concrete class lives in error_feedback.hpp; this factory builds it
/// from any inner compressor (including COMPSO itself).
std::unique_ptr<GradientCompressor> make_error_feedback(
    std::unique_ptr<GradientCompressor> inner);

/// Seeded randomized-linear compressors (DESIGN.md §17): count-sketch
/// (rows × width sign-hash accumulation, mean-of-rows unbiased decode)
/// and block random projection (seeded ±1 projection, (1/m)·Aᵀy
/// unbiased reconstruction). Payload seeds are counter-derived per
/// stream, so parallel payloads are bit-identical to serial and the
/// counters survive checkpoint resume. Declared in sketch.hpp.
std::unique_ptr<GradientCompressor> make_count_sketch(double ratio,
                                                      unsigned rows,
                                                      std::uint64_t seed);
std::unique_ptr<GradientCompressor> make_random_projection(double ratio,
                                                           std::uint64_t seed);

}  // namespace compso::compress
