// COMPSO's hybrid compressor (paper §4.3, Algorithm 1, Fig. 4a):
//
//   Step 1   filter:    |g| < eb_f * absmax  ->  0, recorded in a bitmap
//   Step 2-1 quantize:  survivors -> error-bounded SR integer codes
//   Step 2-2 bitmap:    filtered positions, packed 1 bit/element
//   Step 3   encode:    bitmap and packed codes each through the selected
//                       lossless encoder (ANS by default, Table 2)
//
// Payload layout (wire format v1, see DESIGN.md "Payload format v1"):
//   [17-byte header: magic "CSO1" | version | element count | body CRC32]
//   body: [f64 step][u8 bit_width][u8 flags]
//         flags bit 0 set => the filter ran; only then the bitmap rides:
//         [u64 survivor_count][u64 bitmap_blob_size][bitmap blob]
//         [codes blob]  (always, to end of payload)
//
// Two implementations share that wire format:
//
//   - CompsoCompressor (the production path, make_compso): the fused
//     single-pass pipeline of §4.5 / DESIGN.md §10 — blockwise extrema,
//     one filter+SR+bitmap sweep into reusable scratch, in-place codec
//     emission into the payload buffer, and a fused
//     popcount/scatter/dequantize decoder. Zero steady-state heap
//     allocations on compress once the thread-local scratch has grown.
//   - CompsoReferenceCompressor (make_compso_reference): the original
//     multi-pass pipeline, kept verbatim as the bit-exactness oracle for
//     tests and the unfused baseline for the throughput benches. The two
//     produce byte-identical payloads for the same Rng state.

#include "src/compress/compressor.hpp"
#include "src/quant/filter.hpp"
#include "src/quant/fused.hpp"
#include "src/quant/quantizer.hpp"
#include "src/tensor/stats.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstring>
#include <stdexcept>

namespace compso::compress {
namespace {

constexpr std::uint32_t kMagic = 0x43534F31U;  // "CSO1"

void append_f64(Bytes& out, double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, 8);
  codec::detail::append_u64(out, bits);
}

void write_u64_at(Bytes& out, std::size_t pos, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out[pos + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(v >> (8 * i));
  }
}

/// Shared decode of the fixed part of the body; both implementations
/// validate identically.
struct DecodedHeader {
  std::size_t count = 0;
  double step = 0.0;
  unsigned bit_width = 1;
  bool filtered = false;
};

DecodedHeader decode_fixed_header(ByteView payload, codec::wire::Reader& r) {
  namespace wire = codec::wire;
  const wire::PayloadHeader header = wire::read_payload_header(payload, kMagic);
  if (header.count > wire::kMaxElementCount) {
    throw PayloadError("COMPSO: element count out of range");
  }
  DecodedHeader h;
  h.count = static_cast<std::size_t>(header.count);
  h.step = r.f64();
  if (!std::isfinite(h.step)) {
    throw PayloadError("COMPSO: non-finite quantization step");
  }
  h.bit_width = r.u8();
  if (h.bit_width == 0 || h.bit_width > 64) {
    throw PayloadError("COMPSO: bit width out of range");
  }
  const std::uint8_t flags = r.u8();
  if ((flags & ~1U) != 0) throw PayloadError("COMPSO: unknown flags");
  h.filtered = (flags & 1U) != 0;
  return h;
}

// ---------------------------------------------------------------------------
// Fused production path.
// ---------------------------------------------------------------------------

class CompsoCompressor final : public GradientCompressor {
 public:
  explicit CompsoCompressor(const CompsoParams& p)
      : params_(p), codec_(codec::make_codec(p.encoder)) {
    if (p.quant_bound <= 0.0) {
      throw std::invalid_argument("COMPSO: quant_bound must be > 0");
    }
  }

  std::string_view name() const noexcept override { return "COMPSO"; }

  Bytes compress(std::span<const float> values,
                 tensor::Rng& rng) const override {
    Bytes out;
    compress_into(values, rng, out);
    return out;
  }

  void compress_into(std::span<const float> values, tensor::Rng& rng,
                     Bytes& out) const override {
    const std::size_t n = values.size();
    const double abs_max = quant::extrema_blockwise(values).abs_max;
    quant::FusedScratch& scratch = tls_scratch();

    const quant::FusedEncodeInfo info = quant::fused_filter_quantize(
        values, params_.filter_bound, params_.quant_bound, params_.use_filter,
        abs_max, quant::RoundingMode::kStochastic, rng, scratch);
    quant::pack_scratch_codes(info, scratch);

    // Exact upper bound on the payload: fixed fields plus one codec frame
    // per blob, each at most header + mode byte + raw input (the stored
    // fallback; coded frames are smaller by construction).
    constexpr std::size_t kFrameOverhead = codec::detail::kHeaderSize + 1;
    out.clear();
    out.reserve(codec::wire::kHeaderSize + 10 +
                (info.filtered
                     ? 16 + kFrameOverhead + scratch.bitmap.size()
                     : 0) +
                kFrameOverhead + scratch.packed.size());

    codec::wire::begin_payload(out, kMagic, n);
    append_f64(out, info.step);
    out.push_back(static_cast<std::uint8_t>(info.bit_width));
    out.push_back(info.filtered ? 1 : 0);
    if (info.filtered) {
      codec::detail::append_u64(out, info.survivors);
      // The bitmap blob is emitted straight into the payload; its size is
      // only known afterwards, so patch the placeholder.
      const std::size_t size_pos = out.size();
      codec::detail::append_u64(out, 0);
      const std::size_t blob_begin = out.size();
      codec_->encode_into(scratch.bitmap, out);
      write_u64_at(out, size_pos, out.size() - blob_begin);
    }
    codec_->encode_into(scratch.packed, out);
    codec::wire::seal_payload(out);
  }

  std::size_t max_payload_bytes(std::size_t values) const noexcept override {
    // Exact worst case of compress_into's layout, field by field. The
    // packed-codes bound comes from the quantizer's math, not a blanket
    // per-payload multiplier: |code| <= ceil(1 / (2 eb_q)) (value / step
    // with step = 2 eb_q absmax, SR rounding away from zero at most once),
    // so the zigzag code is < 2 ceil(1 / (2 eb_q)) + 1 and the bit width
    // is data-independent up to that ceiling. Codec frames are bounded by
    // their stored-mode fallback: header + mode byte + raw blob.
    constexpr std::size_t kFrameOverhead = codec::detail::kHeaderSize + 1;
    const double inv = 1.0 / (2.0 * params_.quant_bound);
    const auto max_mag = static_cast<std::uint64_t>(std::ceil(inv));
    const std::uint64_t zz_max = 2 * max_mag + 1;
    const unsigned width =
        std::min<unsigned>(64, static_cast<unsigned>(std::bit_width(zz_max)));
    const std::size_t packed_worst = (values * width + 7) / 8;
    const std::size_t bitmap_worst = (values + 7) / 8;
    return codec::wire::kHeaderSize + 10 +
           (params_.use_filter ? 16 + kFrameOverhead + bitmap_worst : 0) +
           kFrameOverhead + packed_worst;
  }

  std::vector<float> decompress(ByteView payload) const override {
    std::vector<float> out;
    decompress_into(payload, out);
    return out;
  }

  void decompress_into(ByteView payload,
                       std::vector<float>& out) const override {
    namespace wire = codec::wire;
    wire::Reader r(wire::payload_body(payload));
    const DecodedHeader h = decode_fixed_header(payload, r);

    // Decoded blobs land in thread-local scratch: steady-state decompress
    // performs no heap allocation (mirrors compress_into's FusedScratch).
    thread_local Bytes bitmap_scratch;
    thread_local Bytes packed_scratch;
    std::uint64_t survivor_count = h.count;
    Bytes& bitmap = bitmap_scratch;
    Bytes& packed = packed_scratch;
    bitmap.clear();
    if (h.filtered) {
      survivor_count = r.bounded_u64(h.count, "survivor_count");
      const std::uint64_t bitmap_blob_size = r.u64();
      const ByteView bitmap_blob = r.blob(bitmap_blob_size);
      // The bitmap and packed-code blobs are independent streams, so they
      // decode in one interleaved pass (two rANS state chains in flight
      // hide the per-symbol latency). Results and the validation below
      // are identical to two sequential decodes.
      codec_->decode_pair_into(bitmap_blob, bitmap, r.rest(), packed);
      if (bitmap.size() != (h.count + 7) / 8) {
        throw PayloadError("COMPSO: bitmap size mismatch");
      }
      // The bitmap and the survivor count describe the same thing; if they
      // disagree the payload is corrupt and scatter would misalign.
      const std::size_t unfiltered =
          h.count - quant::bitmap_count_set(bitmap, h.count);
      if (unfiltered != survivor_count) {
        throw PayloadError("COMPSO: bitmap disagrees with survivor count");
      }
    } else {
      codec_->decode_into(r.rest(), packed);
    }
    // pack_codes emits exactly ceil(n * width / 8) bytes; anything else
    // means a corrupted stream (survivor_count <= 2^32 and width <= 64, so
    // the product cannot overflow).
    if (packed.size() != (survivor_count * h.bit_width + 7) / 8) {
      throw PayloadError("COMPSO: packed code stream size mismatch");
    }

    out.resize(h.count);
    if (h.filtered) {
      quant::fused_scatter_dequant(packed, h.bit_width, h.step, bitmap,
                                   static_cast<std::size_t>(survivor_count),
                                   out);
    } else {
      quant::fused_dequant(packed, h.bit_width, h.step, out);
    }
  }

  GpuProfile gpu_profile() const noexcept override {
    // Single fused kernel (filter + quantize + encode) per §4.5; slightly
    // more work than plain QSGD because the filter branch diverges and the
    // bitmap adds strided writes (lower effective bandwidth).
    return {.stages = 3,
            .flops_per_byte = 6.0,
            .bandwidth_efficiency = 0.26,
            .dispatch = gpusim::Dispatch::kFusedKernel,
            .framework_ops_per_stage = 1,
            .memory_passes = 3.5};  // extrema, filter+quantize, ANS x2
  }

 private:
  static quant::FusedScratch& tls_scratch() {
    // One scratch per thread, shared by every fused compressor instance:
    // compress_into is a single-threaded critical path per call, and the
    // parallel engine runs each layer's compress on exactly one worker.
    thread_local quant::FusedScratch scratch;
    return scratch;
  }

  CompsoParams params_;
  std::unique_ptr<codec::Codec> codec_;
};

// ---------------------------------------------------------------------------
// Reference multi-pass path (the pre-fusion implementation, unchanged).
// ---------------------------------------------------------------------------

class CompsoReferenceCompressor final : public GradientCompressor {
 public:
  explicit CompsoReferenceCompressor(const CompsoParams& p,
                                     std::string_view name = "COMPSO-unfused")
      : params_(p), codec_(codec::make_codec(p.encoder)), name_(name) {
    if (p.quant_bound <= 0.0) {
      throw std::invalid_argument("COMPSO: quant_bound must be > 0");
    }
  }

  std::string_view name() const noexcept override { return name_; }

  Bytes compress(std::span<const float> values,
                 tensor::Rng& rng) const override {
    const double abs_max = tensor::extrema(values).abs_max;

    // Step 1: filter (skipped in conservative SR-only mode). When the
    // filter is off there is nothing to record: no bitmap is built or
    // shipped, and the flags bit tells the decoder so.
    const bool filtered = params_.use_filter && params_.filter_bound > 0.0;
    quant::FilterResult filt;
    std::span<const float> survivors = values;
    if (filtered) {
      filt = quant::apply_filter(values, params_.filter_bound, abs_max);
      survivors = filt.survivors;
    }

    // Step 2-1: error-bounded SR on survivors.
    const quant::ErrorBoundedQuantizer q(params_.quant_bound,
                                         quant::RoundingMode::kStochastic);
    const quant::QuantizedBlock block = q.quantize(survivors, rng, abs_max);
    const Bytes packed = quant::pack_codes(block.codes, block.bit_width);

    Bytes out;
    codec::wire::begin_payload(out, kMagic, values.size());
    append_f64(out, block.step);
    out.push_back(static_cast<std::uint8_t>(block.bit_width));
    out.push_back(filtered ? 1 : 0);
    if (filtered) {
      // Step 3 (bitmap branch): lossless-encode the filter bitmap.
      const Bytes bitmap_blob = codec_->encode(filt.bitmap);
      codec::detail::append_u64(out, survivors.size());
      codec::detail::append_u64(out, bitmap_blob.size());
      out.insert(out.end(), bitmap_blob.begin(), bitmap_blob.end());
    }
    const Bytes codes_blob = codec_->encode(packed);
    out.insert(out.end(), codes_blob.begin(), codes_blob.end());
    codec::wire::seal_payload(out);
    return out;
  }

  std::vector<float> decompress(ByteView payload) const override {
    namespace wire = codec::wire;
    wire::Reader r(wire::payload_body(payload));
    const DecodedHeader h = decode_fixed_header(payload, r);
    const std::size_t count = h.count;

    std::uint64_t survivor_count = h.count;
    Bytes bitmap;
    if (h.filtered) {
      survivor_count = r.bounded_u64(h.count, "survivor_count");
      const std::uint64_t bitmap_blob_size = r.u64();
      bitmap = codec_->decode(r.blob(bitmap_blob_size));
      if (bitmap.size() != (count + 7) / 8) {
        throw PayloadError("COMPSO: bitmap size mismatch");
      }
      std::uint64_t unfiltered = 0;
      for (std::size_t i = 0; i < count; ++i) {
        if (!quant::bitmap_get(bitmap, i)) ++unfiltered;
      }
      if (unfiltered != survivor_count) {
        throw PayloadError("COMPSO: bitmap disagrees with survivor count");
      }
    }

    const Bytes packed = codec_->decode(r.rest());
    if (packed.size() != (survivor_count * h.bit_width + 7) / 8) {
      throw PayloadError("COMPSO: packed code stream size mismatch");
    }

    const auto codes =
        quant::unpack_codes(packed, h.bit_width, survivor_count);
    std::vector<float> survivors(survivor_count);
    quant::QuantizedBlock block;
    block.codes = codes;
    block.step = h.step;
    block.bit_width = h.bit_width;
    quant::ErrorBoundedQuantizer::dequantize(block, survivors);

    if (!h.filtered) return survivors;
    std::vector<float> out(count);
    quant::scatter_survivors(bitmap, survivors, out);
    return out;
  }

  GpuProfile gpu_profile() const noexcept override {
    return {.stages = 3,
            .flops_per_byte = 6.0,
            .bandwidth_efficiency = 0.26,
            .dispatch = gpusim::Dispatch::kFusedKernel,
            .framework_ops_per_stage = 1,
            .memory_passes = 3.5};
  }

 private:
  CompsoParams params_;
  std::unique_ptr<codec::Codec> codec_;
  std::string name_;
};

}  // namespace

std::unique_ptr<GradientCompressor> make_compso(const CompsoParams& params) {
  // Quantization bounds tight enough to overflow the fused path's int32
  // code scratch (eb below ~2e-10) fall back to the multi-pass pipeline,
  // which carries codes as int64. Nothing in the training stack configures
  // such bounds; this keeps the pathological corner correct anyway.
  if (!quant::codes_fit_int32(params.quant_bound)) {
    return std::make_unique<CompsoReferenceCompressor>(params, "COMPSO");
  }
  return std::make_unique<CompsoCompressor>(params);
}

std::unique_ptr<GradientCompressor> make_compso_reference(
    const CompsoParams& params) {
  return std::make_unique<CompsoReferenceCompressor>(params);
}

}  // namespace compso::compress
