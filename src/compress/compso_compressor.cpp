// COMPSO's hybrid compressor (paper §4.3, Algorithm 1, Fig. 4a):
//
//   Step 1   filter:    |g| < eb_f * absmax  ->  0, recorded in a bitmap
//   Step 2-1 quantize:  survivors -> error-bounded SR integer codes
//   Step 2-2 bitmap:    filtered positions, packed 1 bit/element
//   Step 3   encode:    bitmap and packed codes each through the selected
//                       lossless encoder (ANS by default, Table 2)
//
// Payload layout:
//   [u64 count][u64 survivor_count][f64 step][u8 bit_width][u8 use_filter]
//   [u64 bitmap_blob_size][bitmap blob][codes blob]

#include "src/compress/compressor.hpp"
#include "src/quant/filter.hpp"
#include "src/quant/quantizer.hpp"
#include "src/tensor/stats.hpp"

#include <cstring>
#include <stdexcept>

namespace compso::compress {
namespace {

void append_f64(Bytes& out, double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, 8);
  codec::detail::append_u64(out, bits);
}

double read_f64(ByteView in, std::size_t offset) {
  const std::uint64_t bits = codec::detail::read_u64(in, offset);
  double v;
  std::memcpy(&v, &bits, 8);
  return v;
}

class CompsoCompressor final : public GradientCompressor {
 public:
  explicit CompsoCompressor(const CompsoParams& p)
      : params_(p), codec_(codec::make_codec(p.encoder)) {
    if (p.quant_bound <= 0.0) {
      throw std::invalid_argument("COMPSO: quant_bound must be > 0");
    }
  }

  std::string_view name() const noexcept override { return "COMPSO"; }

  Bytes compress(std::span<const float> values,
                 tensor::Rng& rng) const override {
    const double abs_max = tensor::extrema(values).abs_max;

    // Step 1: filter (skipped in conservative SR-only mode).
    quant::FilterResult filt;
    std::span<const float> survivors = values;
    if (params_.use_filter && params_.filter_bound > 0.0) {
      filt = quant::apply_filter(values, params_.filter_bound, abs_max);
      survivors = filt.survivors;
    } else {
      filt.total = values.size();
      filt.bitmap.assign((values.size() + 7) / 8, 0);
    }

    // Step 2-1: error-bounded SR on survivors.
    const quant::ErrorBoundedQuantizer q(params_.quant_bound,
                                         quant::RoundingMode::kStochastic);
    const quant::QuantizedBlock block = q.quantize(survivors, rng, abs_max);
    const Bytes packed = quant::pack_codes(block.codes, block.bit_width);

    // Step 3: lossless encoding of both streams.
    const Bytes bitmap_blob = codec_->encode(filt.bitmap);
    const Bytes codes_blob = codec_->encode(packed);

    Bytes out;
    codec::detail::append_u64(out, values.size());
    codec::detail::append_u64(out, survivors.size());
    append_f64(out, block.step);
    out.push_back(static_cast<std::uint8_t>(block.bit_width));
    out.push_back(params_.use_filter ? 1 : 0);
    codec::detail::append_u64(out, bitmap_blob.size());
    out.insert(out.end(), bitmap_blob.begin(), bitmap_blob.end());
    out.insert(out.end(), codes_blob.begin(), codes_blob.end());
    return out;
  }

  std::vector<float> decompress(ByteView payload) const override {
    std::size_t pos = 0;
    const std::uint64_t count = codec::detail::read_u64(payload, pos); pos += 8;
    const std::uint64_t survivor_count = codec::detail::read_u64(payload, pos);
    pos += 8;
    const double step = read_f64(payload, pos); pos += 8;
    if (pos + 2 > payload.size()) {
      throw std::invalid_argument("COMPSO: truncated payload");
    }
    const unsigned bit_width = payload[pos++];
    const bool used_filter = payload[pos++] != 0;
    const std::uint64_t bitmap_blob_size = codec::detail::read_u64(payload, pos);
    pos += 8;
    if (pos + bitmap_blob_size > payload.size()) {
      throw std::invalid_argument("COMPSO: truncated bitmap blob");
    }
    const Bytes bitmap = codec_->decode(payload.subspan(pos, bitmap_blob_size));
    pos += bitmap_blob_size;
    const Bytes packed = codec_->decode(payload.subspan(pos));

    const auto codes = quant::unpack_codes(packed, bit_width, survivor_count);
    std::vector<float> survivors(survivor_count);
    quant::QuantizedBlock block;
    block.codes = codes;
    block.step = step;
    block.bit_width = bit_width;
    quant::ErrorBoundedQuantizer::dequantize(block, survivors);

    std::vector<float> out(count);
    if (used_filter) {
      quant::scatter_survivors(bitmap, survivors, out);
    } else {
      out = std::move(survivors);
      out.resize(count);
    }
    return out;
  }

  GpuProfile gpu_profile() const noexcept override {
    // Single fused kernel (filter + quantize + encode) per §4.5; slightly
    // more work than plain QSGD because the filter branch diverges and the
    // bitmap adds strided writes (lower effective bandwidth).
    return {.stages = 3,
            .flops_per_byte = 6.0,
            .bandwidth_efficiency = 0.26,
            .dispatch = gpusim::Dispatch::kFusedKernel,
            .framework_ops_per_stage = 1,
            .memory_passes = 3.5};  // extrema, filter+quantize, ANS x2
  }

 private:
  CompsoParams params_;
  std::unique_ptr<codec::Codec> codec_;
};

}  // namespace

std::unique_ptr<GradientCompressor> make_compso(const CompsoParams& params) {
  return std::make_unique<CompsoCompressor>(params);
}

}  // namespace compso::compress
