// COMPSO's hybrid compressor (paper §4.3, Algorithm 1, Fig. 4a):
//
//   Step 1   filter:    |g| < eb_f * absmax  ->  0, recorded in a bitmap
//   Step 2-1 quantize:  survivors -> error-bounded SR integer codes
//   Step 2-2 bitmap:    filtered positions, packed 1 bit/element
//   Step 3   encode:    bitmap and packed codes each through the selected
//                       lossless encoder (ANS by default, Table 2)
//
// Payload layout (wire format v1, see DESIGN.md "Payload format v1"):
//   [17-byte header: magic "CSO1" | version | element count | body CRC32]
//   body: [f64 step][u8 bit_width][u8 flags]
//         flags bit 0 set => the filter ran; only then the bitmap rides:
//         [u64 survivor_count][u64 bitmap_blob_size][bitmap blob]
//         [codes blob]  (always, to end of payload)

#include "src/compress/compressor.hpp"
#include "src/quant/filter.hpp"
#include "src/quant/quantizer.hpp"
#include "src/tensor/stats.hpp"

#include <cmath>
#include <cstring>
#include <stdexcept>

namespace compso::compress {
namespace {

constexpr std::uint32_t kMagic = 0x43534F31U;  // "CSO1"

void append_f64(Bytes& out, double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, 8);
  codec::detail::append_u64(out, bits);
}

class CompsoCompressor final : public GradientCompressor {
 public:
  explicit CompsoCompressor(const CompsoParams& p)
      : params_(p), codec_(codec::make_codec(p.encoder)) {
    if (p.quant_bound <= 0.0) {
      throw std::invalid_argument("COMPSO: quant_bound must be > 0");
    }
  }

  std::string_view name() const noexcept override { return "COMPSO"; }

  Bytes compress(std::span<const float> values,
                 tensor::Rng& rng) const override {
    const double abs_max = tensor::extrema(values).abs_max;

    // Step 1: filter (skipped in conservative SR-only mode). When the
    // filter is off there is nothing to record: no bitmap is built or
    // shipped, and the flags bit tells the decoder so.
    const bool filtered = params_.use_filter && params_.filter_bound > 0.0;
    quant::FilterResult filt;
    std::span<const float> survivors = values;
    if (filtered) {
      filt = quant::apply_filter(values, params_.filter_bound, abs_max);
      survivors = filt.survivors;
    }

    // Step 2-1: error-bounded SR on survivors.
    const quant::ErrorBoundedQuantizer q(params_.quant_bound,
                                         quant::RoundingMode::kStochastic);
    const quant::QuantizedBlock block = q.quantize(survivors, rng, abs_max);
    const Bytes packed = quant::pack_codes(block.codes, block.bit_width);

    Bytes out;
    codec::wire::begin_payload(out, kMagic, values.size());
    append_f64(out, block.step);
    out.push_back(static_cast<std::uint8_t>(block.bit_width));
    out.push_back(filtered ? 1 : 0);
    if (filtered) {
      // Step 3 (bitmap branch): lossless-encode the filter bitmap.
      const Bytes bitmap_blob = codec_->encode(filt.bitmap);
      codec::detail::append_u64(out, survivors.size());
      codec::detail::append_u64(out, bitmap_blob.size());
      out.insert(out.end(), bitmap_blob.begin(), bitmap_blob.end());
    }
    const Bytes codes_blob = codec_->encode(packed);
    out.insert(out.end(), codes_blob.begin(), codes_blob.end());
    codec::wire::seal_payload(out);
    return out;
  }

  std::vector<float> decompress(ByteView payload) const override {
    namespace wire = codec::wire;
    const wire::PayloadHeader header =
        wire::read_payload_header(payload, kMagic);
    if (header.count > wire::kMaxElementCount) {
      throw PayloadError("COMPSO: element count out of range");
    }
    const auto count = static_cast<std::size_t>(header.count);
    wire::Reader r(wire::payload_body(payload));

    const double step = r.f64();
    if (!std::isfinite(step)) {
      throw PayloadError("COMPSO: non-finite quantization step");
    }
    const unsigned bit_width = r.u8();
    if (bit_width == 0 || bit_width > 64) {
      throw PayloadError("COMPSO: bit width out of range");
    }
    const std::uint8_t flags = r.u8();
    if ((flags & ~1U) != 0) throw PayloadError("COMPSO: unknown flags");
    const bool filtered = (flags & 1U) != 0;

    std::uint64_t survivor_count = header.count;
    Bytes bitmap;
    if (filtered) {
      survivor_count = r.bounded_u64(header.count, "survivor_count");
      const std::uint64_t bitmap_blob_size = r.u64();
      bitmap = codec_->decode(r.blob(bitmap_blob_size));
      if (bitmap.size() != (count + 7) / 8) {
        throw PayloadError("COMPSO: bitmap size mismatch");
      }
      // The bitmap and the survivor count describe the same thing; if they
      // disagree the payload is corrupt and scatter would misalign.
      std::uint64_t unfiltered = 0;
      for (std::size_t i = 0; i < count; ++i) {
        if (!quant::bitmap_get(bitmap, i)) ++unfiltered;
      }
      if (unfiltered != survivor_count) {
        throw PayloadError("COMPSO: bitmap disagrees with survivor count");
      }
    }

    const Bytes packed = codec_->decode(r.rest());
    // pack_codes emits exactly ceil(n * width / 8) bytes; anything else
    // means a corrupted stream (survivor_count <= 2^32 and width <= 64, so
    // the product cannot overflow).
    if (packed.size() != (survivor_count * bit_width + 7) / 8) {
      throw PayloadError("COMPSO: packed code stream size mismatch");
    }

    const auto codes = quant::unpack_codes(packed, bit_width, survivor_count);
    std::vector<float> survivors(survivor_count);
    quant::QuantizedBlock block;
    block.codes = codes;
    block.step = step;
    block.bit_width = bit_width;
    quant::ErrorBoundedQuantizer::dequantize(block, survivors);

    if (!filtered) return survivors;
    std::vector<float> out(count);
    quant::scatter_survivors(bitmap, survivors, out);
    return out;
  }

  GpuProfile gpu_profile() const noexcept override {
    // Single fused kernel (filter + quantize + encode) per §4.5; slightly
    // more work than plain QSGD because the filter branch diverges and the
    // bitmap adds strided writes (lower effective bandwidth).
    return {.stages = 3,
            .flops_per_byte = 6.0,
            .bandwidth_efficiency = 0.26,
            .dispatch = gpusim::Dispatch::kFusedKernel,
            .framework_ops_per_stage = 1,
            .memory_passes = 3.5};  // extrema, filter+quantize, ANS x2
  }

 private:
  CompsoParams params_;
  std::unique_ptr<codec::Codec> codec_;
};

}  // namespace

std::unique_ptr<GradientCompressor> make_compso(const CompsoParams& params) {
  return std::make_unique<CompsoCompressor>(params);
}

}  // namespace compso::compress
