// Baseline compressors the paper evaluates against (§2.4, §5):
//   QSGD        = fixed n-bit SR quantization + Elias gamma coding.
//   SZ (cuSZ)   = 1-D Lorenzo prediction + RN error-bounded quantization +
//                 Huffman coding of the prediction-error codes.
//   CocktailSGD = seeded random sampling (no index transmission thanks to
//                 the shared seed) + n-bit SR quantization.
//   Top-k       = magnitude sparsification with explicit indices.
//   Identity    = no compression.

#include "src/codec/elias.hpp"
#include "src/codec/huffman.hpp"
#include "src/compress/compressor.hpp"
#include "src/quant/quantizer.hpp"
#include "src/tensor/stats.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <numeric>
#include <stdexcept>

namespace compso::compress {
namespace {

void append_f64(Bytes& out, double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, 8);
  codec::detail::append_u64(out, bits);
}

double read_f64(ByteView in, std::size_t offset) {
  const std::uint64_t bits = codec::detail::read_u64(in, offset);
  double v;
  std::memcpy(&v, &bits, 8);
  return v;
}

void append_f32(Bytes& out, float v) {
  std::uint32_t bits;
  std::memcpy(&bits, &v, 4);
  codec::detail::append_u32(out, bits);
}

float read_f32(ByteView in, std::size_t offset) {
  const std::uint32_t bits = codec::detail::read_u32(in, offset);
  float v;
  std::memcpy(&v, &bits, 4);
  return v;
}

// ---------------------------------------------------------------- QSGD --
class QsgdCompressor final : public GradientCompressor {
 public:
  explicit QsgdCompressor(unsigned bits) : bits_(bits) {}

  std::string_view name() const noexcept override { return "QSGD"; }

  Bytes compress(std::span<const float> values,
                 tensor::Rng& rng) const override {
    const quant::FixedBitQuantizer q(bits_, quant::RoundingMode::kStochastic);
    const quant::QuantizedBlock block = q.quantize(values, rng);
    const Bytes coded = codec::elias_gamma_encode_signed(block.codes);
    Bytes out;
    codec::detail::append_u64(out, values.size());
    append_f64(out, block.step);
    out.insert(out.end(), coded.begin(), coded.end());
    return out;
  }

  std::vector<float> decompress(ByteView payload) const override {
    const std::uint64_t count = codec::detail::read_u64(payload, 0);
    const double step = read_f64(payload, 8);
    const auto codes =
        codec::elias_gamma_decode_signed(payload.subspan(16), count);
    std::vector<float> out(count);
    for (std::size_t i = 0; i < count; ++i) {
      out[i] = static_cast<float>(static_cast<double>(codes[i]) * step);
    }
    return out;
  }

  GpuProfile gpu_profile() const noexcept override {
    // Fused normalize+SR+encode: fewer operations than COMPSO (no filter).
    return {.stages = 2,
            .flops_per_byte = 4.0,
            .bandwidth_efficiency = 0.26,
            .dispatch = gpusim::Dispatch::kFusedKernel,
            .framework_ops_per_stage = 1,
            .memory_passes = 3.0};  // extrema, quantize, Elias encode
  }

 private:
  unsigned bits_;
};

// ------------------------------------------------------------------ SZ --
class SzCompressor final : public GradientCompressor {
 public:
  explicit SzCompressor(double eb) : eb_(eb) {
    if (eb_ <= 0.0) throw std::invalid_argument("SZ: error bound must be > 0");
  }

  std::string_view name() const noexcept override { return "SZ"; }

  Bytes compress(std::span<const float> values,
                 tensor::Rng& /*rng*/) const override {
    const auto ex = tensor::extrema(values);
    const double range = static_cast<double>(ex.max) - ex.min;
    const double step = 2.0 * eb_ * (range > 0.0 ? range : 1.0);

    // Lorenzo: predict each value as the previous *reconstructed* value,
    // RN-quantize the prediction error into a byte-sized code; values whose
    // error exceeds the code range become "unpredictable" (escape 0) and
    // are stored raw.
    Bytes codes(values.size());
    Bytes raw;
    double prev = 0.0;
    std::size_t unpredictable = 0;
    for (std::size_t i = 0; i < values.size(); ++i) {
      const double err = static_cast<double>(values[i]) - prev;
      const auto q = static_cast<long>(std::llround(err / step));
      if (q >= -126 && q <= 127) {
        codes[i] = static_cast<std::uint8_t>(q + 128);
        prev += static_cast<double>(q) * step;
      } else {
        codes[i] = 0;  // escape
        append_f32(raw, values[i]);
        prev = values[i];
        ++unpredictable;
      }
    }
    const Bytes coded = codec::huffman_encode(codes);
    Bytes out;
    codec::detail::append_u64(out, values.size());
    append_f64(out, step);
    codec::detail::append_u64(out, unpredictable);
    codec::detail::append_u64(out, coded.size());
    out.insert(out.end(), coded.begin(), coded.end());
    out.insert(out.end(), raw.begin(), raw.end());
    return out;
  }

  std::vector<float> decompress(ByteView payload) const override {
    std::size_t pos = 0;
    const std::uint64_t count = codec::detail::read_u64(payload, pos); pos += 8;
    const double step = read_f64(payload, pos); pos += 8;
    const std::uint64_t unpredictable = codec::detail::read_u64(payload, pos);
    pos += 8;
    const std::uint64_t coded_size = codec::detail::read_u64(payload, pos);
    pos += 8;
    const Bytes codes = codec::huffman_decode(payload.subspan(pos, coded_size));
    pos += coded_size;
    if (codes.size() != count) {
      throw std::invalid_argument("SZ: code count mismatch");
    }
    ByteView raw = payload.subspan(pos);
    if (raw.size() < unpredictable * 4) {
      throw std::invalid_argument("SZ: truncated raw values");
    }
    std::vector<float> out(count);
    double prev = 0.0;
    std::size_t raw_pos = 0;
    for (std::size_t i = 0; i < count; ++i) {
      if (codes[i] == 0) {
        prev = read_f32(raw, raw_pos);
        raw_pos += 4;
      } else {
        prev += static_cast<double>(static_cast<int>(codes[i]) - 128) * step;
      }
      out[i] = static_cast<float>(prev);
    }
    return out;
  }

  GpuProfile gpu_profile() const noexcept override {
    // cuSZ: fused prediction+quantization kernel, separate Huffman kernels;
    // prediction introduces a dependency chain lowering efficiency.
    return {.stages = 3,
            .flops_per_byte = 8.0,
            .bandwidth_efficiency = 0.10,
            .dispatch = gpusim::Dispatch::kSeparateKernels,
            .framework_ops_per_stage = 1};
  }

 private:
  double eb_;
};

// --------------------------------------------------------- CocktailSGD --
class CocktailCompressor final : public GradientCompressor {
 public:
  CocktailCompressor(double keep_fraction, unsigned bits)
      : keep_(keep_fraction), bits_(bits) {
    if (keep_ <= 0.0 || keep_ > 1.0) {
      throw std::invalid_argument("CocktailSGD: keep fraction in (0, 1]");
    }
  }

  std::string_view name() const noexcept override { return "CocktailSGD"; }

  Bytes compress(std::span<const float> values,
                 tensor::Rng& rng) const override {
    // Shared-seed random sampling: the seed rides in the payload, so the
    // receiver regenerates the same positions and no indices are sent.
    const std::uint64_t seed = rng();
    const auto selected = select_positions(values.size(), seed);
    std::vector<float> sampled;
    sampled.reserve(selected.size());
    for (auto i : selected) sampled.push_back(values[i]);

    const quant::FixedBitQuantizer q(bits_, quant::RoundingMode::kStochastic);
    const quant::QuantizedBlock block = q.quantize(sampled, rng);
    const Bytes packed = quant::pack_codes(block.codes, block.bit_width);

    Bytes out;
    codec::detail::append_u64(out, values.size());
    codec::detail::append_u64(out, seed);
    append_f64(out, block.step);
    out.push_back(static_cast<std::uint8_t>(block.bit_width));
    out.insert(out.end(), packed.begin(), packed.end());
    return out;
  }

  std::vector<float> decompress(ByteView payload) const override {
    std::size_t pos = 0;
    const std::uint64_t count = codec::detail::read_u64(payload, pos); pos += 8;
    const std::uint64_t seed = codec::detail::read_u64(payload, pos); pos += 8;
    const double step = read_f64(payload, pos); pos += 8;
    if (pos >= payload.size()) {
      throw std::invalid_argument("CocktailSGD: truncated payload");
    }
    const unsigned bit_width = payload[pos++];
    const auto selected = select_positions(count, seed);
    const auto codes =
        quant::unpack_codes(payload.subspan(pos), bit_width, selected.size());
    std::vector<float> out(count, 0.0F);
    for (std::size_t k = 0; k < selected.size(); ++k) {
      out[selected[k]] =
          static_cast<float>(static_cast<double>(codes[k]) * step);
    }
    return out;
  }

  GpuProfile gpu_profile() const noexcept override {
    // The paper measures CocktailSGD through PyTorch: framework dispatch
    // per op, and the sampling/top-k stage is expensive (§5.3).
    return {.stages = 3,
            .flops_per_byte = 10.0,
            .bandwidth_efficiency = 0.45,
            .dispatch = gpusim::Dispatch::kFrameworkOps,
            .framework_ops_per_stage = 2};
  }

 private:
  std::vector<std::size_t> select_positions(std::size_t n,
                                            std::uint64_t seed) const {
    // Deterministic selection of ~keep_ * n positions from the seed.
    tensor::Rng sel(seed);
    std::vector<std::size_t> out;
    out.reserve(static_cast<std::size_t>(static_cast<double>(n) * keep_) + 1);
    for (std::size_t i = 0; i < n; ++i) {
      if (sel.uniform() < static_cast<float>(keep_)) out.push_back(i);
    }
    return out;
  }

  double keep_;
  unsigned bits_;
};

// --------------------------------------------------------------- Top-k --
class TopKCompressor final : public GradientCompressor {
 public:
  explicit TopKCompressor(double keep_fraction) : keep_(keep_fraction) {
    if (keep_ <= 0.0 || keep_ > 1.0) {
      throw std::invalid_argument("TopK: keep fraction in (0, 1]");
    }
  }

  std::string_view name() const noexcept override { return "TopK"; }

  Bytes compress(std::span<const float> values,
                 tensor::Rng& /*rng*/) const override {
    const auto k = std::max<std::size_t>(
        1, static_cast<std::size_t>(static_cast<double>(values.size()) * keep_));
    std::vector<std::size_t> idx(values.size());
    std::iota(idx.begin(), idx.end(), std::size_t{0});
    std::nth_element(idx.begin(), idx.begin() + static_cast<std::ptrdiff_t>(k - 1),
                     idx.end(), [&](std::size_t a, std::size_t b) {
                       return std::fabs(values[a]) > std::fabs(values[b]);
                     });
    idx.resize(std::min(k, values.size()));
    std::sort(idx.begin(), idx.end());

    Bytes out;
    codec::detail::append_u64(out, values.size());
    codec::detail::append_u64(out, idx.size());
    // Delta-coded indices (gamma) + raw FP32 values.
    std::vector<std::uint64_t> deltas;
    deltas.reserve(idx.size());
    std::size_t prev = 0;
    for (std::size_t i : idx) {
      deltas.push_back(i - prev + 1);
      prev = i;
    }
    const Bytes dcoded = codec::elias_gamma_encode(deltas);
    codec::detail::append_u64(out, dcoded.size());
    out.insert(out.end(), dcoded.begin(), dcoded.end());
    for (std::size_t i : idx) append_f32(out, values[i]);
    return out;
  }

  std::vector<float> decompress(ByteView payload) const override {
    std::size_t pos = 0;
    const std::uint64_t count = codec::detail::read_u64(payload, pos); pos += 8;
    const std::uint64_t k = codec::detail::read_u64(payload, pos); pos += 8;
    const std::uint64_t dsize = codec::detail::read_u64(payload, pos); pos += 8;
    const auto deltas = codec::elias_gamma_decode(payload.subspan(pos, dsize), k);
    pos += dsize;
    std::vector<float> out(count, 0.0F);
    std::size_t prev = 0;
    for (std::uint64_t j = 0; j < k; ++j) {
      const std::size_t i = prev + static_cast<std::size_t>(deltas[j]) - 1;
      out[i] = read_f32(payload, pos);
      pos += 4;
      prev = i;
    }
    return out;
  }

  GpuProfile gpu_profile() const noexcept override {
    return {.stages = 3,
            .flops_per_byte = 16.0,  // selection is compute-heavy
            .bandwidth_efficiency = 0.30,
            .dispatch = gpusim::Dispatch::kSeparateKernels,
            .framework_ops_per_stage = 1};
  }

 private:
  double keep_;
};

// ------------------------------------------------------------ Identity --
class IdentityCompressor final : public GradientCompressor {
 public:
  std::string_view name() const noexcept override { return "Identity"; }

  Bytes compress(std::span<const float> values,
                 tensor::Rng& /*rng*/) const override {
    Bytes out;
    codec::detail::append_u64(out, values.size());
    out.resize(8 + values.size() * 4);
    std::memcpy(out.data() + 8, values.data(), values.size() * 4);
    return out;
  }

  std::vector<float> decompress(ByteView payload) const override {
    const std::uint64_t count = codec::detail::read_u64(payload, 0);
    if (payload.size() < 8 + count * 4) {
      throw std::invalid_argument("Identity: truncated payload");
    }
    std::vector<float> out(count);
    std::memcpy(out.data(), payload.data() + 8, count * 4);
    return out;
  }

  GpuProfile gpu_profile() const noexcept override {
    return {.stages = 1,
            .flops_per_byte = 0.0,
            .bandwidth_efficiency = 1.0,
            .dispatch = gpusim::Dispatch::kFusedKernel,
            .framework_ops_per_stage = 1};
  }
};

}  // namespace

std::unique_ptr<GradientCompressor> make_qsgd(unsigned bits) {
  return std::make_unique<QsgdCompressor>(bits);
}
std::unique_ptr<GradientCompressor> make_sz(double relative_error_bound) {
  return std::make_unique<SzCompressor>(relative_error_bound);
}
std::unique_ptr<GradientCompressor> make_cocktail(double keep_fraction,
                                                  unsigned bits) {
  return std::make_unique<CocktailCompressor>(keep_fraction, bits);
}
std::unique_ptr<GradientCompressor> make_topk(double keep_fraction) {
  return std::make_unique<TopKCompressor>(keep_fraction);
}
std::unique_ptr<GradientCompressor> make_identity() {
  return std::make_unique<IdentityCompressor>();
}

}  // namespace compso::compress
