// Baseline compressors the paper evaluates against (§2.4, §5):
//   QSGD        = fixed n-bit SR quantization + Elias gamma coding.
//   SZ (cuSZ)   = 1-D Lorenzo prediction + RN error-bounded quantization +
//                 Huffman coding of the prediction-error codes.
//   CocktailSGD = seeded random sampling (no index transmission thanks to
//                 the shared seed) + n-bit SR quantization.
//   Top-k       = magnitude sparsification with explicit indices.
//   Identity    = no compression.
//
// All payloads use wire format v1 (see DESIGN.md "Payload format v1"): a
// 17-byte [magic | version | count | body CRC32] header followed by the
// body documented per compressor below. Decompress validates the header,
// then reads the body through the bounds-checked wire::Reader and
// cross-checks every length field structurally before allocating.

#include "src/codec/elias.hpp"
#include "src/codec/huffman.hpp"
#include "src/compress/compressor.hpp"
#include "src/quant/quantizer.hpp"
#include "src/tensor/stats.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <numeric>
#include <stdexcept>

namespace compso::compress {
namespace {

namespace wire = codec::wire;

constexpr std::uint32_t kQsgdMagic = 0x51534744U;      // "QSGD"
constexpr std::uint32_t kSzMagic = 0x535A3031U;        // "SZ01"
constexpr std::uint32_t kCocktailMagic = 0x434B544CU;  // "CKTL"
constexpr std::uint32_t kTopKMagic = 0x544F504BU;      // "TOPK"
constexpr std::uint32_t kIdentityMagic = 0x49444E54U;  // "IDNT"

void append_f64(Bytes& out, double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, 8);
  codec::detail::append_u64(out, bits);
}

void append_f32(Bytes& out, float v) {
  std::uint32_t bits;
  std::memcpy(&bits, &v, 4);
  codec::detail::append_u32(out, bits);
}

/// Reads the common header, bounds the element count, and returns it.
std::size_t checked_count(ByteView payload, std::uint32_t magic,
                          const char* who) {
  const wire::PayloadHeader h = wire::read_payload_header(payload, magic);
  if (h.count > wire::kMaxElementCount) {
    throw PayloadError(std::string(who) + ": element count out of range");
  }
  return static_cast<std::size_t>(h.count);
}

double finite_f64(wire::Reader& r, const char* who) {
  const double v = r.f64();
  if (!std::isfinite(v)) {
    throw PayloadError(std::string(who) + ": non-finite step");
  }
  return v;
}

// ---------------------------------------------------------------- QSGD --
// Body: [f64 step][Elias-gamma signed codes, to end of payload]
class QsgdCompressor final : public GradientCompressor {
 public:
  explicit QsgdCompressor(unsigned bits) : bits_(bits) {}

  std::string_view name() const noexcept override { return "QSGD"; }

  Bytes compress(std::span<const float> values,
                 tensor::Rng& rng) const override {
    const quant::FixedBitQuantizer q(bits_, quant::RoundingMode::kStochastic);
    const quant::QuantizedBlock block = q.quantize(values, rng);
    const Bytes coded = codec::elias_gamma_encode_signed(block.codes);
    Bytes out;
    wire::begin_payload(out, kQsgdMagic, values.size());
    append_f64(out, block.step);
    out.insert(out.end(), coded.begin(), coded.end());
    wire::seal_payload(out);
    return out;
  }

  std::vector<float> decompress(ByteView payload) const override {
    const std::size_t count = checked_count(payload, kQsgdMagic, "QSGD");
    wire::Reader r(wire::payload_body(payload));
    const double step = finite_f64(r, "QSGD");
    // elias_gamma_decode bounds count against the stream's bit capacity
    // before allocating and throws on any corrupt/truncated code.
    const auto codes = codec::elias_gamma_decode_signed(r.rest(), count);
    std::vector<float> out(count);
    for (std::size_t i = 0; i < count; ++i) {
      out[i] = static_cast<float>(static_cast<double>(codes[i]) * step);
    }
    return out;
  }

  GpuProfile gpu_profile() const noexcept override {
    // Fused normalize+SR+encode: fewer operations than COMPSO (no filter).
    return {.stages = 2,
            .flops_per_byte = 4.0,
            .bandwidth_efficiency = 0.26,
            .dispatch = gpusim::Dispatch::kFusedKernel,
            .framework_ops_per_stage = 1,
            .memory_passes = 3.0};  // extrema, quantize, Elias encode
  }

 private:
  unsigned bits_;
};

// ------------------------------------------------------------------ SZ --
// Body: [f64 step][u64 unpredictable][u64 coded_size][Huffman codes blob]
//       [f32 raw value x unpredictable]
class SzCompressor final : public GradientCompressor {
 public:
  explicit SzCompressor(double eb) : eb_(eb) {
    if (eb_ <= 0.0) throw std::invalid_argument("SZ: error bound must be > 0");
  }

  std::string_view name() const noexcept override { return "SZ"; }

  Bytes compress(std::span<const float> values,
                 tensor::Rng& /*rng*/) const override {
    const auto ex = tensor::extrema(values);
    const double range = static_cast<double>(ex.max) - ex.min;
    const double step = 2.0 * eb_ * (range > 0.0 ? range : 1.0);

    // Lorenzo: predict each value as the previous *reconstructed* value,
    // RN-quantize the prediction error into a byte-sized code; values whose
    // error exceeds the code range become "unpredictable" (escape 0) and
    // are stored raw.
    Bytes codes(values.size());
    Bytes raw;
    double prev = 0.0;
    std::size_t unpredictable = 0;
    for (std::size_t i = 0; i < values.size(); ++i) {
      const double err = static_cast<double>(values[i]) - prev;
      const auto q = static_cast<long>(std::llround(err / step));
      if (q >= -126 && q <= 127) {
        codes[i] = static_cast<std::uint8_t>(q + 128);
        prev += static_cast<double>(q) * step;
      } else {
        codes[i] = 0;  // escape
        append_f32(raw, values[i]);
        prev = values[i];
        ++unpredictable;
      }
    }
    const Bytes coded = codec::huffman_encode(codes);
    Bytes out;
    wire::begin_payload(out, kSzMagic, values.size());
    append_f64(out, step);
    codec::detail::append_u64(out, unpredictable);
    codec::detail::append_u64(out, coded.size());
    out.insert(out.end(), coded.begin(), coded.end());
    out.insert(out.end(), raw.begin(), raw.end());
    wire::seal_payload(out);
    return out;
  }

  std::vector<float> decompress(ByteView payload) const override {
    const std::size_t count = checked_count(payload, kSzMagic, "SZ");
    wire::Reader r(wire::payload_body(payload));
    const double step = finite_f64(r, "SZ");
    const std::uint64_t unpredictable = r.bounded_u64(count, "unpredictable");
    const std::uint64_t coded_size = r.u64();
    const Bytes codes = codec::huffman_decode(r.blob(coded_size));
    if (codes.size() != count) {
      throw PayloadError("SZ: code count mismatch");
    }
    // The escape codes drive reads from the raw stream, so the stream must
    // match them exactly: as many f32s as escapes, no trailing garbage.
    const std::uint64_t escapes = static_cast<std::uint64_t>(
        std::count(codes.begin(), codes.end(), std::uint8_t{0}));
    if (escapes != unpredictable) {
      throw PayloadError("SZ: escape count disagrees with code stream");
    }
    ByteView raw = r.rest();
    if (raw.size() != wire::checked_mul(unpredictable, 4, "SZ raw stream")) {
      throw PayloadError("SZ: raw value stream size mismatch");
    }
    std::vector<float> out(count);
    double prev = 0.0;
    std::size_t raw_pos = 0;
    for (std::size_t i = 0; i < count; ++i) {
      if (codes[i] == 0) {
        float v;
        std::memcpy(&v, raw.data() + raw_pos, 4);
        prev = v;
        raw_pos += 4;
      } else {
        prev += static_cast<double>(static_cast<int>(codes[i]) - 128) * step;
      }
      out[i] = static_cast<float>(prev);
    }
    return out;
  }

  GpuProfile gpu_profile() const noexcept override {
    // cuSZ: fused prediction+quantization kernel, separate Huffman kernels;
    // prediction introduces a dependency chain lowering efficiency.
    return {.stages = 3,
            .flops_per_byte = 8.0,
            .bandwidth_efficiency = 0.10,
            .dispatch = gpusim::Dispatch::kSeparateKernels,
            .framework_ops_per_stage = 1};
  }

 private:
  double eb_;
};

// --------------------------------------------------------- CocktailSGD --
// Body: [u64 seed][f64 step][u8 bit_width][u64 sampled_count]
//       [bit-packed codes, to end of payload]
// sampled_count is redundant with (count, seed) but lets the decoder bound
// the O(count) position replay against data the packed stream attests to.
class CocktailCompressor final : public GradientCompressor {
 public:
  CocktailCompressor(double keep_fraction, unsigned bits)
      : keep_(keep_fraction), bits_(bits) {
    if (keep_ <= 0.0 || keep_ > 1.0) {
      throw std::invalid_argument("CocktailSGD: keep fraction in (0, 1]");
    }
  }

  std::string_view name() const noexcept override { return "CocktailSGD"; }

  Bytes compress(std::span<const float> values,
                 tensor::Rng& rng) const override {
    // Shared-seed random sampling: the seed rides in the payload, so the
    // receiver regenerates the same positions and no indices are sent.
    const std::uint64_t seed = rng();
    const auto selected = select_positions(values.size(), seed);
    std::vector<float> sampled;
    sampled.reserve(selected.size());
    for (auto i : selected) sampled.push_back(values[i]);

    const quant::FixedBitQuantizer q(bits_, quant::RoundingMode::kStochastic);
    const quant::QuantizedBlock block = q.quantize(sampled, rng);
    const Bytes packed = quant::pack_codes(block.codes, block.bit_width);

    Bytes out;
    wire::begin_payload(out, kCocktailMagic, values.size());
    codec::detail::append_u64(out, seed);
    append_f64(out, block.step);
    out.push_back(static_cast<std::uint8_t>(block.bit_width));
    codec::detail::append_u64(out, selected.size());
    out.insert(out.end(), packed.begin(), packed.end());
    wire::seal_payload(out);
    return out;
  }

  std::vector<float> decompress(ByteView payload) const override {
    const std::size_t count =
        checked_count(payload, kCocktailMagic, "CocktailSGD");
    wire::Reader r(wire::payload_body(payload));
    const std::uint64_t seed = r.u64();
    const double step = finite_f64(r, "CocktailSGD");
    const unsigned bit_width = r.u8();
    if (bit_width == 0 || bit_width > 64) {
      throw PayloadError("CocktailSGD: bit width out of range");
    }
    const std::uint64_t sampled_count = r.bounded_u64(count, "sampled_count");
    ByteView packed = r.rest();
    // pack_codes emits exactly ceil(n * width / 8) bytes, which pins
    // sampled_count to the bytes actually present...
    if (packed.size() != (sampled_count * bit_width + 7) / 8) {
      throw PayloadError("CocktailSGD: packed code stream size mismatch");
    }
    // ...and the expected sample yield bounds the claimed element count in
    // turn (binomial count*keep concentrates tightly; 16x + slack is far
    // beyond any legitimate deviation) before the O(count) replay below.
    if (static_cast<double>(count) * keep_ >
        16.0 * static_cast<double>(sampled_count) + 65536.0) {
      throw PayloadError("CocktailSGD: element count implausible for sample");
    }
    const auto selected = select_positions(count, seed);
    if (selected.size() != sampled_count) {
      throw PayloadError("CocktailSGD: sample count disagrees with seed");
    }
    const auto codes = quant::unpack_codes(packed, bit_width, sampled_count);
    std::vector<float> out(count, 0.0F);
    for (std::size_t k = 0; k < selected.size(); ++k) {
      out[selected[k]] =
          static_cast<float>(static_cast<double>(codes[k]) * step);
    }
    return out;
  }

  GpuProfile gpu_profile() const noexcept override {
    // The paper measures CocktailSGD through PyTorch: framework dispatch
    // per op, and the sampling/top-k stage is expensive (§5.3).
    return {.stages = 3,
            .flops_per_byte = 10.0,
            .bandwidth_efficiency = 0.45,
            .dispatch = gpusim::Dispatch::kFrameworkOps,
            .framework_ops_per_stage = 2};
  }

 private:
  std::vector<std::size_t> select_positions(std::size_t n,
                                            std::uint64_t seed) const {
    // Deterministic selection of ~keep_ * n positions from the seed.
    tensor::Rng sel(seed);
    std::vector<std::size_t> out;
    out.reserve(static_cast<std::size_t>(static_cast<double>(n) * keep_) + 1);
    for (std::size_t i = 0; i < n; ++i) {
      if (sel.uniform() < static_cast<float>(keep_)) out.push_back(i);
    }
    return out;
  }

  double keep_;
  unsigned bits_;
};

// --------------------------------------------------------------- Top-k --
// Body: [u64 k][u64 delta_blob_size][Elias-gamma index deltas]
//       [f32 value x k]
class TopKCompressor final : public GradientCompressor {
 public:
  explicit TopKCompressor(double keep_fraction) : keep_(keep_fraction) {
    if (keep_ <= 0.0 || keep_ > 1.0) {
      throw std::invalid_argument("TopK: keep fraction in (0, 1]");
    }
  }

  std::string_view name() const noexcept override { return "TopK"; }

  Bytes compress(std::span<const float> values,
                 tensor::Rng& /*rng*/) const override {
    const std::size_t k = expected_k(values.size());
    std::vector<std::size_t> idx(values.size());
    std::iota(idx.begin(), idx.end(), std::size_t{0});
    if (k > 0) {
      std::nth_element(idx.begin(),
                       idx.begin() + static_cast<std::ptrdiff_t>(k - 1),
                       idx.end(), [&](std::size_t a, std::size_t b) {
                         return std::fabs(values[a]) > std::fabs(values[b]);
                       });
    }
    idx.resize(k);
    std::sort(idx.begin(), idx.end());

    Bytes out;
    wire::begin_payload(out, kTopKMagic, values.size());
    codec::detail::append_u64(out, idx.size());
    // Delta-coded indices (gamma) + raw FP32 values.
    std::vector<std::uint64_t> deltas;
    deltas.reserve(idx.size());
    std::size_t prev = 0;
    for (std::size_t i : idx) {
      deltas.push_back(i - prev + 1);
      prev = i;
    }
    const Bytes dcoded = codec::elias_gamma_encode(deltas);
    codec::detail::append_u64(out, dcoded.size());
    out.insert(out.end(), dcoded.begin(), dcoded.end());
    for (std::size_t i : idx) append_f32(out, values[i]);
    wire::seal_payload(out);
    return out;
  }

  std::vector<float> decompress(ByteView payload) const override {
    const std::size_t count = checked_count(payload, kTopKMagic, "TopK");
    wire::Reader r(wire::payload_body(payload));
    const std::uint64_t k = r.bounded_u64(count, "k");
    // k is fully determined by count and the configured keep fraction, so
    // a mismatch can only mean corruption.
    if (k != expected_k(count)) {
      throw PayloadError("TopK: k disagrees with element count");
    }
    const std::uint64_t dsize = r.u64();
    const auto deltas = codec::elias_gamma_decode(r.blob(dsize), k);
    ByteView raw = r.rest();
    if (raw.size() != wire::checked_mul(k, 4, "TopK value stream")) {
      throw PayloadError("TopK: value stream size mismatch");
    }
    std::vector<float> out(count, 0.0F);
    std::size_t prev = 0;
    for (std::uint64_t j = 0; j < k; ++j) {
      // Gamma deltas are >= 1 by construction; bound the running index
      // before writing so a corrupt delta cannot land outside `out`.
      const std::size_t i = prev + static_cast<std::size_t>(deltas[j]) - 1;
      if (i < prev || i >= count) {
        throw PayloadError("TopK: index out of range");
      }
      float v;
      std::memcpy(&v, raw.data() + j * 4, 4);
      out[i] = v;
      prev = i;
    }
    return out;
  }

  GpuProfile gpu_profile() const noexcept override {
    return {.stages = 3,
            .flops_per_byte = 16.0,  // selection is compute-heavy
            .bandwidth_efficiency = 0.30,
            .dispatch = gpusim::Dispatch::kSeparateKernels,
            .framework_ops_per_stage = 1};
  }

 private:
  std::size_t expected_k(std::size_t count) const noexcept {
    const auto k = std::max<std::size_t>(
        1, static_cast<std::size_t>(static_cast<double>(count) * keep_));
    return std::min(k, count);
  }

  double keep_;
};

// ------------------------------------------------------------ Identity --
// Body: [f32 value x count]
class IdentityCompressor final : public GradientCompressor {
 public:
  std::string_view name() const noexcept override { return "Identity"; }

  Bytes compress(std::span<const float> values,
                 tensor::Rng& /*rng*/) const override {
    Bytes out;
    wire::begin_payload(out, kIdentityMagic, values.size());
    const std::size_t header = out.size();
    out.resize(header + values.size() * 4);
    if (!values.empty()) {
      std::memcpy(out.data() + header, values.data(), values.size() * 4);
    }
    wire::seal_payload(out);
    return out;
  }

  std::vector<float> decompress(ByteView payload) const override {
    const std::size_t count = checked_count(payload, kIdentityMagic,
                                            "Identity");
    wire::Reader r(wire::payload_body(payload));
    ByteView raw = r.rest();
    if (raw.size() != wire::checked_mul(count, 4, "Identity stream")) {
      throw PayloadError("Identity: payload size mismatch");
    }
    std::vector<float> out(count);
    if (count > 0) {
      std::memcpy(out.data(), raw.data(), count * 4);
    }
    return out;
  }

  GpuProfile gpu_profile() const noexcept override {
    return {.stages = 1,
            .flops_per_byte = 0.0,
            .bandwidth_efficiency = 1.0,
            .dispatch = gpusim::Dispatch::kFusedKernel,
            .framework_ops_per_stage = 1};
  }
};

}  // namespace

std::unique_ptr<GradientCompressor> make_qsgd(unsigned bits) {
  return std::make_unique<QsgdCompressor>(bits);
}
std::unique_ptr<GradientCompressor> make_sz(double relative_error_bound) {
  return std::make_unique<SzCompressor>(relative_error_bound);
}
std::unique_ptr<GradientCompressor> make_cocktail(double keep_fraction,
                                                  unsigned bits) {
  return std::make_unique<CocktailCompressor>(keep_fraction, bits);
}
std::unique_ptr<GradientCompressor> make_topk(double keep_fraction) {
  return std::make_unique<TopKCompressor>(keep_fraction);
}
std::unique_ptr<GradientCompressor> make_identity() {
  return std::make_unique<IdentityCompressor>();
}

}  // namespace compso::compress
