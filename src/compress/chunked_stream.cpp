#include "src/compress/chunked_stream.hpp"

#include "src/common/payload_error.hpp"

#include <algorithm>
#include <stdexcept>

namespace compso::compress {

namespace chunk = codec::chunk;

void ChunkedProducer::reserve_for(std::size_t worst_payload_bytes,
                                  std::size_t chunk_bytes) {
  const std::size_t need = chunk::wire_bytes_for(worst_payload_bytes,
                                                 std::max<std::size_t>(
                                                     chunk_bytes, 1));
  if (wire_.capacity() < need) wire_.reserve(need);
}

void ChunkedProducer::prepare(codec::ByteView payload,
                              std::size_t chunk_bytes) {
  if (chunk_bytes == 0) {
    throw std::invalid_argument("ChunkedProducer: chunk_bytes must be > 0");
  }
  payload_ = payload;
  chunk_bytes_ = chunk_bytes;
  count_ = chunk::chunk_count_for(payload.size(), chunk_bytes);
  // resize, not assign: steady state reuses capacity; the headers and
  // bodies overwrite every byte in frame_chunk.
  wire_.resize(chunk::wire_bytes_for(payload.size(), chunk_bytes));
}

void ChunkedProducer::frame_chunk(std::size_t k) {
  if (k >= count_) {
    throw std::out_of_range("ChunkedProducer: chunk index out of range");
  }
  chunk::write_chunk_frame(wire_.data() + frame_offset(k), payload_, k,
                           count_, k * chunk_bytes_, body_bytes(k));
}

void ChunkedProducer::frame(codec::ByteView payload,
                            std::size_t chunk_bytes) {
  prepare(payload, chunk_bytes);
  for (std::size_t k = 0; k < count_; ++k) frame_chunk(k);
}

codec::ByteView ChunkedProducer::chunk(std::size_t k) const {
  if (k >= count_) {
    throw std::out_of_range("ChunkedProducer: chunk index out of range");
  }
  return codec::ByteView(wire_).subspan(
      frame_offset(k), chunk::kChunkHeaderSize + body_bytes(k));
}

void ChunkedConsumer::serialize(codec::Bytes& out) const {
  out.push_back(passthrough_mode_ ? 1 : 0);
  if (passthrough_mode_) {
    std::uint64_t n = passthrough_.size();
    for (int i = 0; i < 8; ++i) {
      out.push_back(static_cast<std::uint8_t>(n >> (8 * i)));
    }
    out.insert(out.end(), passthrough_.begin(), passthrough_.end());
  } else {
    cursor_.serialize(out);
  }
}

void ChunkedConsumer::deserialize(codec::wire::Reader& reader) {
  const std::uint8_t mode = reader.u8();
  if (mode > 1) throw PayloadError("ChunkedConsumer: corrupt mode flag");
  passthrough_mode_ = mode != 0;
  if (passthrough_mode_) {
    const auto n = reader.bounded_u64(chunk::kMaxPayloadBytes,
                                      "chunked passthrough bytes");
    const auto blob = reader.blob(n);
    passthrough_.assign(blob.begin(), blob.end());
    cursor_.reset();
  } else {
    passthrough_.clear();
    cursor_.deserialize(reader);
  }
}

}  // namespace compso::compress
