#include "src/compress/payload_fuzz.hpp"

#include <algorithm>

namespace compso::compress {

codec::Bytes apply_mutation(codec::ByteView payload, Mutation kind,
                            tensor::Rng& rng) {
  codec::Bytes out(payload.begin(), payload.end());
  switch (kind) {
    case Mutation::kBitFlip: {
      if (out.empty()) break;
      const std::uint64_t flips = 1 + rng.uniform_index(8);
      for (std::uint64_t i = 0; i < flips; ++i) {
        const std::uint64_t bit = rng.uniform_index(out.size() * 8);
        out[static_cast<std::size_t>(bit / 8)] ^=
            static_cast<std::uint8_t>(1U << (bit % 8));
      }
      break;
    }
    case Mutation::kByteSet: {
      if (out.empty()) break;
      const std::uint64_t n = 1 + rng.uniform_index(16);
      for (std::uint64_t i = 0; i < n; ++i) {
        out[static_cast<std::size_t>(rng.uniform_index(out.size()))] =
            static_cast<std::uint8_t>(rng());
      }
      break;
    }
    case Mutation::kTruncate: {
      if (out.empty()) break;
      out.resize(static_cast<std::size_t>(rng.uniform_index(out.size())));
      break;
    }
    case Mutation::kExtend: {
      const std::uint64_t n = 1 + rng.uniform_index(64);
      for (std::uint64_t i = 0; i < n; ++i) {
        out.push_back(static_cast<std::uint8_t>(rng()));
      }
      break;
    }
    case Mutation::kZeroRegion: {
      if (out.empty()) break;
      const auto start =
          static_cast<std::size_t>(rng.uniform_index(out.size()));
      const auto len = static_cast<std::size_t>(
          1 + rng.uniform_index(out.size() - start));
      std::fill_n(out.begin() + static_cast<std::ptrdiff_t>(start), len, 0);
      break;
    }
  }
  return out;
}

codec::Bytes mutate_payload(codec::ByteView payload, tensor::Rng& rng) {
  const auto kind =
      static_cast<Mutation>(rng.uniform_index(kMutationKinds));
  return apply_mutation(payload, kind, rng);
}

}  // namespace compso::compress
