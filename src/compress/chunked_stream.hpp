#pragma once
// ChunkedStream: the producer/consumer pair that turns a finished
// compressor payload into a pipeline of independently-framed,
// independently-CRC'd chunks (codec/chunk.hpp) and back (DESIGN.md §15).
//
// The split of labor that keeps payload bytes bit-identical to the
// unchunked path: the fused compressor still produces the payload in one
// pass (its stochastic-rounding draws and rANS backward pass are
// inherently whole-buffer, so per-slice compression would change the
// bytes), and the chunk layer frames the *finished* bytes. Per-chunk
// framing + CRC is the host work that pipelines: frame(k+1) runs on the
// CompressionEngine while the Communicator ships chunk k, and the
// receiving cursor validates chunk k while k+1 is still in flight.
//
//   ChunkedProducer p;
//   p.reserve_for(compressor.max_payload_bytes(n), chunk_bytes);  // once
//   p.prepare(payload, chunk_bytes);        // layout, no CRC work yet
//   for k: engine.submit([&]{ p.frame_chunk(k); });  // disjoint ranges
//   ... p.chunk(k) -> wire frame for round k
//
// Steady state is allocation-free: prepare() sizes the wire buffer to
// exactly wire_bytes_for(payload) — the payload plus one 29-byte header
// per chunk — and reserve_for pre-grows it to the compressor's worst-case
// bound so per-step payload-size jitter (stochastic rounding changes the
// codec's output a little every step) never triggers a reallocation.

#include "src/codec/chunk.hpp"
#include "src/compress/compressor.hpp"

namespace compso::compress {

class ChunkedProducer {
 public:
  /// Pre-grows the wire buffer for payloads up to `worst_payload_bytes`
  /// (e.g. GradientCompressor::max_payload_bytes) so every later
  /// prepare() of a smaller payload is allocation-free.
  void reserve_for(std::size_t worst_payload_bytes, std::size_t chunk_bytes);

  /// Sizes the wire buffer for `payload` split every `chunk_bytes` and
  /// records the layout. The payload view must stay valid until the last
  /// frame_chunk call — the producer does not copy it. No CRC work
  /// happens here; call frame_chunk per chunk (concurrently safe for
  /// distinct indices) or frame() for all of them inline.
  void prepare(codec::ByteView payload, std::size_t chunk_bytes);

  /// Writes chunk `k`'s header + body + CRC into its disjoint wire range.
  void frame_chunk(std::size_t k);

  /// prepare() + every frame_chunk, inline.
  void frame(codec::ByteView payload, std::size_t chunk_bytes);

  std::size_t chunk_count() const noexcept { return count_; }
  std::size_t chunk_bytes() const noexcept { return chunk_bytes_; }
  /// The sealed wire frame of chunk `k` (header + body).
  codec::ByteView chunk(std::size_t k) const;
  /// All frames, concatenated in index order (the full wire stream).
  codec::ByteView wire() const noexcept { return codec::ByteView(wire_); }
  /// Wire-buffer capacity (for the steady-state allocation tests).
  std::size_t wire_capacity() const noexcept { return wire_.capacity(); }

 private:
  std::size_t frame_offset(std::size_t k) const noexcept {
    // Fixed stride: every chunk before the last carries exactly
    // chunk_bytes_ of body.
    return k * (codec::chunk::kChunkHeaderSize + chunk_bytes_);
  }
  std::size_t body_bytes(std::size_t k) const noexcept {
    const std::size_t begin = k * chunk_bytes_;
    return k + 1 == count_ ? payload_.size() - begin : chunk_bytes_;
  }

  codec::ByteView payload_;
  codec::Bytes wire_;
  std::size_t chunk_bytes_ = 0;
  std::size_t count_ = 0;
};

/// Receiving side: a resumable cursor plus the v1 passthrough. Feed each
/// received chunk frame in round order; `payload()` is the reassembled
/// byte stream, bit-identical to the producer's input. feed_payload()
/// accepts a whole unchunked (v1) payload unchanged — single-frame
/// payloads decode exactly as before the chunk layer existed.
class ChunkedConsumer {
 public:
  void reset() noexcept {
    cursor_.reset();
    passthrough_.clear();
    passthrough_mode_ = false;
  }

  /// Consumes one chunk frame (throws PayloadError on any damage).
  void feed(codec::ByteView frame) { cursor_.feed(frame); }

  /// v1 passthrough: adopts a complete unchunked payload as-is.
  void feed_payload(codec::ByteView payload) {
    passthrough_.assign(payload.begin(), payload.end());
    passthrough_mode_ = true;
  }

  bool complete() const noexcept {
    return passthrough_mode_ || cursor_.complete();
  }
  std::size_t chunks_fed() const noexcept { return cursor_.chunks_fed(); }
  std::size_t chunk_count() const noexcept { return cursor_.chunk_count(); }

  /// The reassembled payload (throws if the stream is incomplete).
  codec::ByteView payload() const {
    return passthrough_mode_ ? codec::ByteView(passthrough_)
                             : cursor_.payload();
  }

  /// Mid-stream checkpoint of the cursor (passthrough payloads are
  /// complete by construction and serialize as a finished stream).
  void serialize(codec::Bytes& out) const;
  void deserialize(codec::wire::Reader& reader);

 private:
  codec::chunk::Cursor cursor_;
  codec::Bytes passthrough_;
  bool passthrough_mode_ = false;
};

}  // namespace compso::compress
