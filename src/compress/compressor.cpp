#include "src/compress/compressor.hpp"

namespace compso::compress {

double GradientCompressor::compression_ratio(std::span<const float> values,
                                             tensor::Rng& rng) const {
  if (values.empty()) return 1.0;
  const Bytes payload = compress(values, rng);
  if (payload.empty()) return 1.0;
  return static_cast<double>(values.size() * sizeof(float)) /
         static_cast<double>(payload.size());
}

double GradientCompressor::modeled_throughput(
    const gpusim::DeviceModel& dev, std::size_t input_bytes,
    std::size_t output_bytes) const noexcept {
  const GpuProfile p = gpu_profile();
  const gpusim::PipelineSpec spec{
      .input_bytes = input_bytes,
      .output_bytes = output_bytes,
      .stages = p.stages,
      .flops_per_byte = p.flops_per_byte,
      .bandwidth_efficiency = p.bandwidth_efficiency,
      .framework_ops_per_stage = p.framework_ops_per_stage,
      .memory_passes = p.memory_passes};
  return gpusim::pipeline_throughput(dev, spec, p.dispatch);
}

}  // namespace compso::compress
