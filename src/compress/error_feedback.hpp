#pragma once
// Error-feedback compression wrapper (DESIGN.md §17).
//
// Wraps any GradientCompressor C with per-stream residual accumulation:
// each step the stream sends C(g + e) and keeps e' = (g + e) - Ĉ(g + e)
// locally, so gradient mass a lossy compressor drops is re-offered next
// step instead of lost ("Error Compensated Distributed SGD Can Be
// Accelerated", Qian et al.; mxnet's 2-bit quantizer keeps the same
// residual per slot). The payload on the wire is the inner compressor's
// payload, unchanged — decompress/validation/max_payload_bytes all
// delegate — so the chunked pipeline, fuzz contract, and recovery ladder
// see a normal inner-format frame.
//
// Residual lifecycle (the part the recovery ladder cares about):
//  - compress_stream_into snapshots the residual before updating it;
//  - notify_fallback (decode-retry ladder exhausted, transport resent the
//    raw gradient) rolls the residual back to the snapshot, because the
//    fallback delivered the *full* gradient — keeping the post-compress
//    residual would re-send mass the peers already applied;
//  - reset_stream drops a stream's state (rank evicted / rejoiner resync);
//  - a size mismatch (layer shape changed under the stream id) resets the
//    residual to zero rather than mixing stale state into a new shape.
//
// The wrapper is a StatefulCompressor: residuals, rollback snapshots, and
// the pending-rollback flags serialize into a versioned blob that the
// trainer checkpoints, so a resume landing between a residual update and
// the next compress (or even between a compress and a late fallback)
// replays bit-exactly.

#include "src/compress/compressor.hpp"

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace compso::compress {

class ErrorFeedbackCompressor final : public GradientCompressor,
                                      public StatefulCompressor {
 public:
  explicit ErrorFeedbackCompressor(std::unique_ptr<GradientCompressor> inner);

  const GradientCompressor& inner() const noexcept { return *inner_; }

  /// Swaps the inner compressor while keeping all residual state — the
  /// trainer's adaptive schedule tightens COMPSO's bounds mid-run without
  /// forgetting the error it still owes each stream.
  void set_inner(std::unique_ptr<GradientCompressor> inner);

  // --- GradientCompressor ---
  std::string_view name() const noexcept override { return name_; }
  Bytes compress(std::span<const float> values,
                 tensor::Rng& rng) const override;
  std::vector<float> decompress(ByteView payload) const override;
  void compress_into(std::span<const float> values, tensor::Rng& rng,
                     Bytes& out) const override;
  void decompress_into(ByteView payload, std::vector<float>& out) const override;
  void compress_stream_into(std::uint64_t stream,
                            std::span<const float> values, tensor::Rng& rng,
                            Bytes& out) const override;
  void notify_fallback(std::uint64_t stream) const noexcept override;
  void reset_stream(std::uint64_t stream) const noexcept override;
  GpuProfile gpu_profile() const noexcept override;
  std::size_t max_payload_bytes(std::size_t values) const noexcept override {
    return inner_->max_payload_bytes(values);
  }

  // --- StatefulCompressor ---
  void serialize_state(Bytes& out) const override;
  void deserialize_state(codec::wire::Reader& reader) override;
  void reset_state() override;

  // --- introspection (tests / DESIGN.md §17 properties) ---
  std::vector<std::uint64_t> stream_ids() const;
  /// Copy of a stream's residual (empty if the stream has no state yet).
  std::vector<float> residual(std::uint64_t stream) const;
  /// L2 norm of a stream's residual.
  double residual_norm(std::uint64_t stream) const;

  /// Default stream used by the non-stream compress()/compress_into()
  /// entry points (single-tensor callers like compression_ratio()).
  static constexpr std::uint64_t kDefaultStream = 0;

 private:
  struct StreamState {
    std::vector<float> residual;  ///< error still owed to the wire.
    std::vector<float> snapshot;  ///< residual before the last compress.
    bool rollback_armed = false;  ///< snapshot valid until next compress.
  };

  StreamState& state_locked(std::uint64_t stream) const;

  std::unique_ptr<GradientCompressor> inner_;
  std::string name_;
  mutable std::mutex mu_;
  /// std::map: stable references under insert and deterministic
  /// (sorted-by-id) serialization order regardless of which pool thread
  /// touched which stream first.
  mutable std::map<std::uint64_t, StreamState> streams_;
};

}  // namespace compso::compress
