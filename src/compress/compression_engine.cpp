#include "src/compress/compression_engine.hpp"

#include "src/common/thread_pool.hpp"

#include <utility>

namespace compso::compress {

CompressionEngine::CompressionEngine(std::size_t threads) {
  if (threads > 0) pool_ = std::make_unique<common::ThreadPool>(threads);
}

CompressionEngine::~CompressionEngine() {
  // The pool destructor drains every queued job, so outstanding tickets
  // complete (their results are simply never observed).
}

std::size_t CompressionEngine::thread_count() const noexcept {
  return pool_ ? pool_->size() : 0;
}

std::function<void()> CompressionEngine::instrument(
    std::function<void()> job, std::string name) {
  if (!obs_.enabled()) return job;
  const std::uint64_t task_id = obs_task_seq_++;
  obs_.count("engine.tasks");
  if (obs_.tracer == nullptr) return job;
  const auto track =
      obs::kTaskTrackBase + static_cast<std::uint32_t>(task_id);
  if (obs_.deterministic_time()) {
    // Deterministic clock: stamp the span here, at submission on the
    // optimizer thread. Simulated time never advances inside a task, so
    // the zero duration is exact — and no worker ever races the clock.
    obs_.complete(track, std::move(name), "engine",
                  obs_.tracer->now_rel_ns(), 0, {{"task", task_id}});
    return job;
  }
  // Wall clock: time the job around its execution on whichever worker
  // picks it up. Record the span even when the job throws, so traces of
  // fault-injected runs still show the failed task.
  obs::Tracer* tracer = obs_.tracer;
  return [tracer, track, task_id, name = std::move(name),
          job = std::move(job)]() {
    const std::uint64_t start = tracer->now_rel_ns();
    const auto record = [&] {
      const std::uint64_t end = tracer->now_rel_ns();
      tracer->complete(track, name, "engine", start,
                       end >= start ? end - start : 0, {{"task", task_id}});
    };
    try {
      job();
    } catch (...) {
      record();
      throw;
    }
    record();
  };
}

CompressionEngine::Ticket CompressionEngine::submit(
    std::function<void()> job, std::string name) {
  const Ticket t = tickets_++;
  job = instrument(std::move(job), std::move(name));
  if (pool_) {
    futures_.push_back(pool_->submit(std::move(job)));
  } else {
    // Serial mode runs inline but defers the exception to wait(), so call
    // sites behave identically in both modes.
    std::exception_ptr err;
    try {
      job();
    } catch (...) {
      err = std::current_exception();
    }
    inline_errors_.push_back(err);
  }
  return t;
}

void CompressionEngine::wait(Ticket ticket) {
  if (pool_) {
    if (ticket < futures_.size() && futures_[ticket].valid()) {
      futures_[ticket].get();
    }
    return;
  }
  if (ticket < inline_errors_.size() && inline_errors_[ticket]) {
    const std::exception_ptr err = std::exchange(inline_errors_[ticket], {});
    std::rethrow_exception(err);
  }
}

void CompressionEngine::wait_all() {
  std::exception_ptr first;
  if (pool_) {
    for (auto& f : futures_) {
      if (!f.valid()) continue;
      try {
        f.get();
      } catch (...) {
        if (!first) first = std::current_exception();
      }
    }
    futures_.clear();
  } else {
    for (auto& err : inline_errors_) {
      if (err && !first) first = std::exchange(err, {});
    }
    inline_errors_.clear();
  }
  tickets_ = 0;
  if (first) std::rethrow_exception(first);
}

void CompressionEngine::run_batch(std::vector<std::function<void()>>&& jobs) {
  std::exception_ptr first;
  if (obs_.enabled()) {
    for (auto& job : jobs) job = instrument(std::move(job));
  }
  if (pool_) {
    std::vector<std::future<void>> batch;
    batch.reserve(jobs.size());
    for (auto& job : jobs) batch.push_back(pool_->submit(std::move(job)));
    for (auto& f : batch) {
      try {
        f.get();
      } catch (...) {
        if (!first) first = std::current_exception();
      }
    }
  } else {
    for (auto& job : jobs) {
      try {
        job();
      } catch (...) {
        if (!first) first = std::current_exception();
      }
    }
  }
  jobs.clear();
  if (first) std::rethrow_exception(first);
}

}  // namespace compso::compress
