#include "src/compress/compression_engine.hpp"

#include "src/common/thread_pool.hpp"

#include <utility>

namespace compso::compress {

CompressionEngine::CompressionEngine(std::size_t threads) {
  if (threads > 0) pool_ = std::make_unique<common::ThreadPool>(threads);
}

CompressionEngine::~CompressionEngine() {
  // The pool destructor drains every queued job, so outstanding tickets
  // complete (their results are simply never observed).
}

std::size_t CompressionEngine::thread_count() const noexcept {
  return pool_ ? pool_->size() : 0;
}

CompressionEngine::Ticket CompressionEngine::submit(
    std::function<void()> job) {
  const Ticket t = tickets_++;
  if (pool_) {
    futures_.push_back(pool_->submit(std::move(job)));
  } else {
    // Serial mode runs inline but defers the exception to wait(), so call
    // sites behave identically in both modes.
    std::exception_ptr err;
    try {
      job();
    } catch (...) {
      err = std::current_exception();
    }
    inline_errors_.push_back(err);
  }
  return t;
}

void CompressionEngine::wait(Ticket ticket) {
  if (pool_) {
    if (ticket < futures_.size() && futures_[ticket].valid()) {
      futures_[ticket].get();
    }
    return;
  }
  if (ticket < inline_errors_.size() && inline_errors_[ticket]) {
    const std::exception_ptr err = std::exchange(inline_errors_[ticket], {});
    std::rethrow_exception(err);
  }
}

void CompressionEngine::wait_all() {
  std::exception_ptr first;
  if (pool_) {
    for (auto& f : futures_) {
      if (!f.valid()) continue;
      try {
        f.get();
      } catch (...) {
        if (!first) first = std::current_exception();
      }
    }
    futures_.clear();
  } else {
    for (auto& err : inline_errors_) {
      if (err && !first) first = std::exchange(err, {});
    }
    inline_errors_.clear();
  }
  tickets_ = 0;
  if (first) std::rethrow_exception(first);
}

void CompressionEngine::run_batch(std::vector<std::function<void()>>&& jobs) {
  std::exception_ptr first;
  if (pool_) {
    std::vector<std::future<void>> batch;
    batch.reserve(jobs.size());
    for (auto& job : jobs) batch.push_back(pool_->submit(std::move(job)));
    for (auto& f : batch) {
      try {
        f.get();
      } catch (...) {
        if (!first) first = std::current_exception();
      }
    }
  } else {
    for (auto& job : jobs) {
      try {
        job();
      } catch (...) {
        if (!first) first = std::current_exception();
      }
    }
  }
  jobs.clear();
  if (first) std::rethrow_exception(first);
}

}  // namespace compso::compress
