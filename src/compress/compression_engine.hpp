#pragma once
// Parallel layer-compression engine (DESIGN.md §10).
//
// Compression of different layers (and of different aggregation groups /
// per-rank simulated streams) is embarrassingly parallel: each job reads
// its own gradient snapshot and writes its own payload buffer. The engine
// runs those jobs on a work-stealing ThreadPool so an optimizer can
// overlap layer i's collective + decode with layer i+1's compression —
// the paper's communication/compression overlap (§4.4) on the host side.
//
// Determinism contract: parallel execution must be bit-identical to
// serial. Jobs therefore never share the optimizer's SR stream. Instead
// the optimizer draws ONE seed from its main stream per step and every
// job derives a private generator with task_rng(step_seed, task_id),
// where task_id reflects the deterministic submission order (layer index,
// rank, group counter). Execution order then cannot influence any random
// draw, so engine(0), engine(1) and engine(N) all produce the same bytes
// — and checkpoint/resume stays bit-exact across engine configurations.
//
// threads == 0 builds a serial engine: jobs run inline at submit() /
// run_batch() with no pool at all (the deterministic baseline the
// parallel modes are tested against). The engine itself is not
// thread-safe: submit/wait are called from the optimizer thread only.

#include "src/obs/obs.hpp"
#include "src/tensor/rng.hpp"

#include <cstdint>
#include <exception>
#include <functional>
#include <future>
#include <memory>
#include <vector>

namespace compso::common {
class ThreadPool;
}

namespace compso::compress {

class CompressionEngine {
 public:
  /// Index of a submitted job; pass to wait(). Valid until the next
  /// wait_all().
  using Ticket = std::size_t;

  /// threads == 0: serial inline mode. threads >= 1: that many workers.
  explicit CompressionEngine(std::size_t threads = 0);
  ~CompressionEngine();

  CompressionEngine(const CompressionEngine&) = delete;
  CompressionEngine& operator=(const CompressionEngine&) = delete;

  /// Worker count (0 in serial mode).
  std::size_t thread_count() const noexcept;

  /// The underlying pool (nullptr in serial mode). Exposed so the math
  /// kernels can share it (tensor::set_math_pool) instead of owning a
  /// second pool that would oversubscribe the cores: layer-level jobs
  /// running ON this pool execute their gemms inline, while top-level
  /// gemms between batches can still fan out across it.
  common::ThreadPool* pool() const noexcept { return pool_.get(); }

  /// The per-task generator: Rng(step_seed) split by the task's
  /// deterministic id. Both the serial and parallel code paths derive
  /// their streams through this one function, which is what makes them
  /// bit-identical.
  static tensor::Rng task_rng(std::uint64_t step_seed,
                              std::uint64_t task_id) noexcept {
    return tensor::Rng(step_seed).split(task_id);
  }

  /// Enqueues `job` (runs it inline in serial mode). The job's exception,
  /// if any, is rethrown by wait(ticket) / wait_all(). `name` labels the
  /// job's tracer span (see set_obs); it does not affect execution.
  Ticket submit(std::function<void()> job,
                std::string name = "engine.task");

  /// Blocks until the job behind `ticket` finished; rethrows its
  /// exception. Waiting twice on a ticket is a no-op.
  void wait(Ticket ticket);

  /// Blocks until every submitted job finished, rethrows the first
  /// pending exception (in ticket order), and recycles the ticket table.
  void wait_all();

  /// Runs a batch of independent jobs to completion — in parallel on the
  /// pool when present, else serially in order. Every job runs even when
  /// another throws (callers retry per-item; a half-executed batch would
  /// corrupt their bookkeeping); the first exception in batch order is
  /// rethrown after the barrier. Outstanding submit() tickets are not
  /// waited on (the batch may run while earlier-layer tickets are still
  /// in flight).
  void run_batch(std::vector<std::function<void()>>&& jobs);

  /// Attaches metrics/tracer hooks and restarts the engine's task
  /// numbering (so runs instrumented from the same logical point emit
  /// identical task ids). Every job then counts `engine.tasks` and
  /// records a span on its own track (kTaskTrackBase + task id). Under a
  /// deterministic tracer clock the span is stamped at submission, on the
  /// optimizer thread, so the trace is byte-identical at any thread
  /// count; under a wall clock it is timed around the job's execution.
  void set_obs(obs::ObsHooks hooks) noexcept {
    obs_ = hooks;
    obs_task_seq_ = 0;
  }
  const obs::ObsHooks& obs() const noexcept { return obs_; }

 private:
  /// Wraps `job` with the per-task instrumentation described at
  /// set_obs(); returns it unchanged when no hooks are attached. Called
  /// on the optimizer thread in submission order.
  std::function<void()> instrument(std::function<void()> job,
                                   std::string name = "engine.task");

  std::unique_ptr<common::ThreadPool> pool_;
  std::vector<std::future<void>> futures_;          ///< parallel tickets.
  std::vector<std::exception_ptr> inline_errors_;   ///< serial tickets.
  std::size_t tickets_ = 0;
  obs::ObsHooks obs_;
  std::uint64_t obs_task_seq_ = 0;
};

}  // namespace compso::compress
