#pragma once
// Seeded randomized-linear (sketching) compressors (DESIGN.md §17), after
// "Problem-dependent convergence bounds for randomized linear gradient
// compression" (Flynn et al.): the compressed message is y = S·g for a
// random matrix S drawn fresh per payload, and the reconstruction
// ĝ = E[Sᵀ]-style unbiased estimate satisfies E[ĝ] = g.
//
//  - Count-sketch: d rows × width-w buckets; row r accumulates
//    s_r(i)·g[i] into bucket h_r(i); decode averages the d per-row
//    estimates s_r(i)·sketch[r][h_r(i)] (mean, not the classical median —
//    the mean keeps the estimator exactly unbiased, which is the property
//    the differential tests pin down).
//  - Random projection: per 256-element block, m ≈ ratio·block seeded ±1
//    rows; y = A·x on the wire, decode x̂ = (1/m)·Aᵀ·y (E[x̂] = x).
//
// Seed-stream scheme: every payload embeds its own u64 seed, derived as
// mix(base_seed, stream, counter[stream]++). Hash/sign bits then come
// from stateless per-index mixing of that seed — never from drawing the
// shared Rng sequentially — so a payload's bits depend only on (stream,
// how many payloads that stream produced before it, input values). That
// is what makes parallel payloads bit-identical to serial at any engine
// thread count, and it makes the whole randomness state checkpointable
// as one {stream → counter} map (a versioned CKPT section with typed
// PayloadError validation; see StatefulCompressor).
//
// Payloads are standard wire-format v1 frames: magic, version, element
// count, CRC32; every embedded field is validated against the remaining
// bytes and the expected geometry for the claimed element count, so a
// truncated or corrupted sketch throws PayloadError before any
// allocation. max_payload_bytes is exact (sketch sizes are deterministic
// in n), which keeps the chunked streaming pipeline allocation-free.

#include "src/compress/compressor.hpp"

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>

namespace compso::compress {

/// Shared per-stream seed-counter state + checkpoint plumbing for both
/// sketch compressors. Concrete classes live in sketch.cpp; tests reach
/// the state through the StatefulCompressor interface.
class SketchSeedState {
 public:
  explicit SketchSeedState(std::uint64_t base_seed) noexcept
      : base_seed_(base_seed) {}

  /// Returns the payload seed for `stream` and advances its counter.
  std::uint64_t next_seed(std::uint64_t stream);

  void serialize(codec::Bytes& out) const;
  void deserialize(codec::wire::Reader& reader);
  void reset();
  void erase(std::uint64_t stream);

  std::uint64_t base_seed() const noexcept { return base_seed_; }

 private:
  std::uint64_t base_seed_;
  mutable std::mutex mu_;
  std::map<std::uint64_t, std::uint64_t> counters_;  ///< stream → #payloads.
};

/// Deterministic geometry helpers, shared with the tests.
namespace sketch_detail {
/// splitmix64 finalizer — the per-index bit mixer.
std::uint64_t mix64(std::uint64_t x) noexcept;
/// Count-sketch bucket width for `n` elements at `ratio` with `rows` rows.
std::size_t count_sketch_width(std::size_t n, double ratio, unsigned rows);
/// Random-projection output rows for one `block_len`-element block.
std::size_t projection_rows(std::size_t block_len, double ratio);
}  // namespace sketch_detail

}  // namespace compso::compress
