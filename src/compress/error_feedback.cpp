#include "src/compress/error_feedback.hpp"

#include "src/codec/ckpt.hpp"
#include "src/codec/wire.hpp"
#include "src/common/payload_error.hpp"

#include <cmath>
#include <utility>

namespace compso::compress {
namespace {

namespace wire = codec::wire;
namespace ckpt = codec::ckpt;

/// "EFST" little-endian — magic of the serialized residual-state blob.
constexpr std::uint32_t kStateMagic = 0x54534645U;
constexpr std::uint8_t kStateVersion = 1;

/// Ceiling on streams a state blob may claim; real trainers hold one
/// stream per (slot, rank) or per gather group, far below this.
constexpr std::uint64_t kMaxStreams = 1u << 20;

std::vector<float> read_residual_vec(wire::Reader& reader, const char* field) {
  const std::uint64_t count =
      reader.bounded_u64(wire::kMaxElementCount, field);
  if (count * sizeof(float) > reader.remaining()) {
    throw PayloadError(std::string("error-feedback state: ") + field +
                       " count exceeds remaining bytes");
  }
  std::vector<float> out(static_cast<std::size_t>(count));
  for (float& v : out) v = reader.f32();
  return out;
}

}  // namespace

ErrorFeedbackCompressor::ErrorFeedbackCompressor(
    std::unique_ptr<GradientCompressor> inner)
    : inner_(std::move(inner)) {
  name_ = "EF+" + std::string(inner_->name());
}

void ErrorFeedbackCompressor::set_inner(
    std::unique_ptr<GradientCompressor> inner) {
  const std::lock_guard<std::mutex> lock(mu_);
  inner_ = std::move(inner);
  name_ = "EF+" + std::string(inner_->name());
}

ErrorFeedbackCompressor::StreamState& ErrorFeedbackCompressor::state_locked(
    std::uint64_t stream) const {
  return streams_[stream];  // std::map: references stay valid on insert.
}

void ErrorFeedbackCompressor::compress_stream_into(
    std::uint64_t stream, std::span<const float> values, tensor::Rng& rng,
    Bytes& out) const {
  StreamState* st;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    st = &state_locked(stream);
  }
  if (st->residual.size() != values.size()) {
    // Shape changed under the stream id (fresh stream, or a layer was
    // re-partitioned): stale error is meaningless, start from zero.
    st->residual.assign(values.size(), 0.0f);
  }
  st->snapshot = st->residual;
  st->rollback_armed = true;

  thread_local std::vector<float> compensated;
  compensated.resize(values.size());
  for (std::size_t i = 0; i < values.size(); ++i) {
    compensated[i] = values[i] + st->residual[i];
  }
  inner_->compress_into(compensated, rng, out);

  thread_local std::vector<float> decoded;
  inner_->decompress_into(out, decoded);
  if (decoded.size() != compensated.size()) {
    throw PayloadError(
        "error-feedback: inner compressor round-trip changed element count");
  }
  for (std::size_t i = 0; i < compensated.size(); ++i) {
    st->residual[i] = compensated[i] - decoded[i];
  }
}

void ErrorFeedbackCompressor::notify_fallback(
    std::uint64_t stream) const noexcept {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = streams_.find(stream);
  if (it == streams_.end() || !it->second.rollback_armed) return;
  it->second.residual = it->second.snapshot;
  it->second.rollback_armed = false;
}

void ErrorFeedbackCompressor::reset_stream(
    std::uint64_t stream) const noexcept {
  const std::lock_guard<std::mutex> lock(mu_);
  streams_.erase(stream);
}

Bytes ErrorFeedbackCompressor::compress(std::span<const float> values,
                                        tensor::Rng& rng) const {
  Bytes out;
  compress_stream_into(kDefaultStream, values, rng, out);
  return out;
}

void ErrorFeedbackCompressor::compress_into(std::span<const float> values,
                                            tensor::Rng& rng,
                                            Bytes& out) const {
  compress_stream_into(kDefaultStream, values, rng, out);
}

std::vector<float> ErrorFeedbackCompressor::decompress(
    ByteView payload) const {
  return inner_->decompress(payload);
}

void ErrorFeedbackCompressor::decompress_into(ByteView payload,
                                              std::vector<float>& out) const {
  inner_->decompress_into(payload, out);
}

GpuProfile ErrorFeedbackCompressor::gpu_profile() const noexcept {
  GpuProfile p = inner_->gpu_profile();
  // One extra read-modify-write sweep of the input for the residual
  // add-back + update, fused into the compressor's first pass.
  p.memory_passes += 1.0;
  return p;
}

void ErrorFeedbackCompressor::serialize_state(Bytes& out) const {
  const std::lock_guard<std::mutex> lock(mu_);
  // Tagged body, not a nested wire frame: the enclosing CKPT frame's CRC
  // already covers these bytes; the magic + version make the blob
  // self-identifying under the per-section checkpoint fuzz.
  ckpt::put_u64(out, kStateMagic);
  ckpt::put_u8(out, kStateVersion);
  ckpt::put_u64(out, streams_.size());
  for (const auto& [id, st] : streams_) {  // std::map: sorted, deterministic.
    ckpt::put_u64(out, id);
    ckpt::put_u8(out, st.rollback_armed ? 1 : 0);
    ckpt::put_floats(out, st.residual);
    ckpt::put_floats(out, st.snapshot);
  }
}

void ErrorFeedbackCompressor::deserialize_state(wire::Reader& reader) {
  if (reader.u64() != kStateMagic) {
    throw PayloadError("error-feedback state: bad magic");
  }
  const std::uint8_t version = reader.u8();
  if (version != kStateVersion) {
    throw PayloadError("error-feedback state: unsupported version");
  }
  const std::uint64_t count = reader.bounded_u64(kMaxStreams, "ef streams");
  std::map<std::uint64_t, StreamState> restored;
  for (std::uint64_t s = 0; s < count; ++s) {
    const std::uint64_t id = reader.u64();
    StreamState st;
    st.rollback_armed = reader.u8() != 0;
    st.residual = read_residual_vec(reader, "ef residual");
    st.snapshot = read_residual_vec(reader, "ef snapshot");
    if (!restored.emplace(id, std::move(st)).second) {
      throw PayloadError("error-feedback state: duplicate stream id");
    }
  }
  const std::lock_guard<std::mutex> lock(mu_);
  streams_ = std::move(restored);  // all-or-nothing swap.
}

void ErrorFeedbackCompressor::reset_state() {
  const std::lock_guard<std::mutex> lock(mu_);
  streams_.clear();
}

std::vector<std::uint64_t> ErrorFeedbackCompressor::stream_ids() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::uint64_t> ids;
  ids.reserve(streams_.size());
  for (const auto& [id, st] : streams_) ids.push_back(id);
  return ids;
}

std::vector<float> ErrorFeedbackCompressor::residual(
    std::uint64_t stream) const {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = streams_.find(stream);
  return it == streams_.end() ? std::vector<float>{} : it->second.residual;
}

double ErrorFeedbackCompressor::residual_norm(std::uint64_t stream) const {
  double sum = 0.0;
  for (const float v : residual(stream)) {
    sum += static_cast<double>(v) * static_cast<double>(v);
  }
  return std::sqrt(sum);
}

std::unique_ptr<GradientCompressor> make_error_feedback(
    std::unique_ptr<GradientCompressor> inner) {
  return std::make_unique<ErrorFeedbackCompressor>(std::move(inner));
}

}  // namespace compso::compress
