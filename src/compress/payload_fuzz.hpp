#pragma once
// Deterministic payload mutation for the wire-format fuzz/property harness
// (tests/test_payload_fuzz.cpp). Given a well-formed payload and an Rng,
// `mutate_payload` produces a corrupted variant — bit flips, byte
// overwrites, truncation, extension, zeroed regions — the kinds of damage
// a transport or a hostile peer can introduce. The decode-side contract
// under test: for ANY mutated payload, decompress/decode either throws
// compso::PayloadError or returns a bit-exact copy of the reference
// decode (a mutation that misses every meaningful byte, e.g. flips inside
// a stored-mode pad). Silent corruption and out-of-bounds reads are bugs.

#include "src/codec/codec.hpp"
#include "src/tensor/rng.hpp"

namespace compso::compress {

enum class Mutation {
  kBitFlip,     ///< flip 1..8 random bits anywhere in the payload.
  kByteSet,     ///< overwrite 1..16 random bytes with random values.
  kTruncate,    ///< drop a random-length tail (possibly the whole body).
  kExtend,      ///< append 1..64 random bytes.
  kZeroRegion,  ///< zero a random contiguous region.
};

constexpr int kMutationKinds = 5;

/// Applies one randomly chosen mutation (drawn from `rng`) to a copy of
/// `payload` and returns it. Never returns a byte-identical copy for a
/// non-empty payload unless the chosen mutation is a no-op by construction
/// (e.g. zeroing an already-zero region) — the harness treats "decodes
/// bit-exactly" as success either way, so benign no-ops are harmless.
codec::Bytes mutate_payload(codec::ByteView payload, tensor::Rng& rng);

/// Applies the specific mutation `kind` (for targeted regression cases).
codec::Bytes apply_mutation(codec::ByteView payload, Mutation kind,
                            tensor::Rng& rng);

}  // namespace compso::compress
