// Seeded randomized-linear compressors (DESIGN.md §17): count-sketch and
// block random projection. See sketch.hpp for the estimator math and the
// counter-derived seed-stream scheme.
//
// Payload bodies (after the standard v1 header, whose count field is the
// original element count):
//   count-sketch: [u64 seed][u32 rows][u64 width][f32 × rows·width]
//   projection:   [u64 seed][u64 block][f32 × total_rows(count)]
// rows/width/block are redundantly embedded and cross-checked against the
// geometry this config derives from the element count — any mismatch
// (truncation, bit rot that survived the CRC, a payload from a different
// config) throws PayloadError before the float data is touched.

#include "src/compress/sketch.hpp"

#include "src/codec/ckpt.hpp"
#include "src/common/payload_error.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

namespace compso::compress {

namespace wire = codec::wire;
namespace ckpt = codec::ckpt;

namespace sketch_detail {

std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

std::size_t count_sketch_width(std::size_t n, double ratio, unsigned rows) {
  if (n == 0) return 0;
  const double target = static_cast<double>(n) * ratio /
                        static_cast<double>(rows);
  return std::max<std::size_t>(1, static_cast<std::size_t>(std::ceil(target)));
}

std::size_t projection_rows(std::size_t block_len, double ratio) {
  if (block_len == 0) return 0;
  const double target = static_cast<double>(block_len) * ratio;
  return std::max<std::size_t>(
      1, static_cast<std::size_t>(std::llround(target)));
}

}  // namespace sketch_detail

using sketch_detail::count_sketch_width;
using sketch_detail::mix64;
using sketch_detail::projection_rows;

// ------------------------------------------------------- seed counters --

std::uint64_t SketchSeedState::next_seed(std::uint64_t stream) {
  std::uint64_t counter;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    counter = counters_[stream]++;
  }
  // Three mixing rounds decorrelate (base, stream, counter) triples that
  // differ in one coordinate by one.
  return mix64(mix64(mix64(base_seed_) ^ stream) ^ counter);
}

namespace {
/// "SKST" little-endian — magic of the serialized seed-counter blob.
constexpr std::uint32_t kSeedStateMagic = 0x54534B53U;
constexpr std::uint8_t kSeedStateVersion = 1;
constexpr std::uint64_t kMaxStreams = 1u << 20;
}  // namespace

void SketchSeedState::serialize(codec::Bytes& out) const {
  const std::lock_guard<std::mutex> lock(mu_);
  ckpt::put_u64(out, kSeedStateMagic);
  ckpt::put_u8(out, kSeedStateVersion);
  ckpt::put_u64(out, base_seed_);
  ckpt::put_u64(out, counters_.size());
  for (const auto& [stream, counter] : counters_) {  // sorted → deterministic.
    ckpt::put_u64(out, stream);
    ckpt::put_u64(out, counter);
  }
}

void SketchSeedState::deserialize(wire::Reader& reader) {
  if (reader.u64() != kSeedStateMagic) {
    throw PayloadError("sketch seed state: bad magic");
  }
  if (reader.u8() != kSeedStateVersion) {
    throw PayloadError("sketch seed state: unsupported version");
  }
  const std::uint64_t base = reader.u64();
  const std::uint64_t count =
      reader.bounded_u64(kMaxStreams, "sketch seed streams");
  if (count * 16 > reader.remaining()) {
    throw PayloadError("sketch seed state: stream count exceeds body");
  }
  std::map<std::uint64_t, std::uint64_t> restored;
  for (std::uint64_t s = 0; s < count; ++s) {
    const std::uint64_t stream = reader.u64();
    const std::uint64_t counter = reader.u64();
    if (!restored.emplace(stream, counter).second) {
      throw PayloadError("sketch seed state: duplicate stream id");
    }
  }
  const std::lock_guard<std::mutex> lock(mu_);
  base_seed_ = base;
  counters_ = std::move(restored);
}

void SketchSeedState::reset() {
  const std::lock_guard<std::mutex> lock(mu_);
  counters_.clear();
}

void SketchSeedState::erase(std::uint64_t stream) {
  const std::lock_guard<std::mutex> lock(mu_);
  counters_.erase(stream);
}

namespace {

constexpr std::uint32_t kCountSketchMagic = 0x534B4348U;  // "SKCH"
constexpr std::uint32_t kProjectionMagic = 0x534B504AU;   // "SKPJ"

void append_f32(Bytes& out, float v) {
  std::uint32_t bits;
  std::memcpy(&bits, &v, 4);
  codec::detail::append_u32(out, bits);
}

std::size_t checked_count(ByteView payload, std::uint32_t magic,
                          const char* who) {
  const wire::PayloadHeader h = wire::read_payload_header(payload, magic);
  if (h.count > wire::kMaxElementCount) {
    throw PayloadError(std::string(who) + ": element count out of range");
  }
  return static_cast<std::size_t>(h.count);
}

// -------------------------------------------------------- count-sketch --
class CountSketchCompressor final : public GradientCompressor,
                                    public StatefulCompressor {
 public:
  CountSketchCompressor(double ratio, unsigned rows, std::uint64_t seed)
      : ratio_(ratio), rows_(rows), seeds_(seed) {}

  std::string_view name() const noexcept override { return "CountSketch"; }

  Bytes compress(std::span<const float> values,
                 tensor::Rng& rng) const override {
    Bytes out;
    compress_stream_into(0, values, rng, out);
    return out;
  }

  void compress_into(std::span<const float> values, tensor::Rng& rng,
                     Bytes& out) const override {
    compress_stream_into(0, values, rng, out);
  }

  void compress_stream_into(std::uint64_t stream,
                            std::span<const float> values, tensor::Rng& rng,
                            Bytes& out) const override {
    (void)rng;  // randomness is counter-derived, never drawn from the Rng.
    const std::uint64_t seed = seeds_.next_seed(stream);
    const std::size_t n = values.size();
    const std::size_t w = count_sketch_width(n, ratio_, rows_);
    out.clear();
    wire::begin_payload(out, kCountSketchMagic, n);
    ckpt::put_u64(out, seed);
    codec::detail::append_u32(out, rows_);
    ckpt::put_u64(out, w);
    thread_local std::vector<float> sketch;
    sketch.assign(static_cast<std::size_t>(rows_) * w, 0.0f);
    for (unsigned r = 0; r < rows_; ++r) {
      const std::uint64_t row_seed = mix64(seed ^ (r + 1));
      float* row = sketch.data() + static_cast<std::size_t>(r) * w;
      for (std::size_t i = 0; i < n; ++i) {
        const std::uint64_t h = mix64(row_seed ^ i);
        const std::size_t bucket = static_cast<std::size_t>(h % w);
        const float sign = (h >> 63) ? -1.0f : 1.0f;
        row[bucket] += sign * values[i];
      }
    }
    for (const float v : sketch) append_f32(out, v);
    wire::seal_payload(out);
  }

  std::vector<float> decompress(ByteView payload) const override {
    std::vector<float> out;
    decompress_into(payload, out);
    return out;
  }

  void decompress_into(ByteView payload,
                       std::vector<float>& out) const override {
    const std::size_t n =
        checked_count(payload, kCountSketchMagic, "CountSketch");
    wire::Reader r(wire::payload_body(payload));
    const std::uint64_t seed = r.u64();
    const std::uint32_t rows = r.u32();
    const std::uint64_t width = r.u64();
    if (rows != rows_ || width != count_sketch_width(n, ratio_, rows_)) {
      throw PayloadError("CountSketch: geometry mismatch for element count");
    }
    const std::uint64_t total = wire::checked_mul(rows, width, "CountSketch");
    if (total * sizeof(float) != r.remaining()) {
      throw PayloadError("CountSketch: sketch data size mismatch");
    }
    std::vector<float> sketch(static_cast<std::size_t>(total));
    for (float& v : sketch) v = r.f32();
    out.assign(n, 0.0f);
    if (n == 0) return;
    const float inv_rows = 1.0f / static_cast<float>(rows);
    for (std::uint32_t row = 0; row < rows; ++row) {
      const std::uint64_t row_seed = mix64(seed ^ (row + 1));
      const float* data = sketch.data() + static_cast<std::size_t>(row) * width;
      for (std::size_t i = 0; i < n; ++i) {
        const std::uint64_t h = mix64(row_seed ^ i);
        const float sign = (h >> 63) ? -1.0f : 1.0f;
        out[i] += sign * data[h % width] * inv_rows;
      }
    }
  }

  void reset_stream(std::uint64_t stream) const noexcept override {
    seeds_.erase(stream);
  }

  GpuProfile gpu_profile() const noexcept override {
    GpuProfile p;
    p.stages = 2;  // hash+scatter-add, pack.
    p.flops_per_byte = 2.0;
    p.bandwidth_efficiency = 0.55;  // scattered atomics across buckets.
    p.memory_passes = static_cast<double>(rows_);
    return p;
  }

  std::size_t max_payload_bytes(std::size_t values) const noexcept override {
    const std::size_t w = count_sketch_width(values, ratio_, rows_);
    return wire::kHeaderSize + 8 + 4 + 8 +
           static_cast<std::size_t>(rows_) * w * sizeof(float);
  }

  void serialize_state(Bytes& out) const override { seeds_.serialize(out); }
  void deserialize_state(wire::Reader& reader) override {
    seeds_.deserialize(reader);
  }
  void reset_state() override { seeds_.reset(); }

 private:
  double ratio_;
  unsigned rows_;
  mutable SketchSeedState seeds_;
};

// ---------------------------------------------------- random projection --
constexpr std::size_t kProjectionBlock = 256;

class RandomProjectionCompressor final : public GradientCompressor,
                                         public StatefulCompressor {
 public:
  RandomProjectionCompressor(double ratio, std::uint64_t seed)
      : ratio_(ratio), seeds_(seed) {}

  std::string_view name() const noexcept override { return "RandProj"; }

  Bytes compress(std::span<const float> values,
                 tensor::Rng& rng) const override {
    Bytes out;
    compress_stream_into(0, values, rng, out);
    return out;
  }

  void compress_into(std::span<const float> values, tensor::Rng& rng,
                     Bytes& out) const override {
    compress_stream_into(0, values, rng, out);
  }

  void compress_stream_into(std::uint64_t stream,
                            std::span<const float> values, tensor::Rng& rng,
                            Bytes& out) const override {
    (void)rng;  // randomness is counter-derived, never drawn from the Rng.
    const std::uint64_t seed = seeds_.next_seed(stream);
    const std::size_t n = values.size();
    out.clear();
    wire::begin_payload(out, kProjectionMagic, n);
    ckpt::put_u64(out, seed);
    ckpt::put_u64(out, kProjectionBlock);
    for (std::size_t begin = 0; begin < n; begin += kProjectionBlock) {
      const std::size_t len = std::min(kProjectionBlock, n - begin);
      const std::size_t m = projection_rows(len, ratio_);
      const std::uint64_t block_seed = mix64(seed ^ (begin + 1));
      for (std::size_t j = 0; j < m; ++j) {
        const std::uint64_t row_seed = mix64(block_seed ^ j);
        float acc = 0.0f;
        for (std::size_t i = 0; i < len; ++i) {
          const float sign = (mix64(row_seed ^ i) >> 63) ? -1.0f : 1.0f;
          acc += sign * values[begin + i];
        }
        append_f32(out, acc);
      }
    }
    wire::seal_payload(out);
  }

  std::vector<float> decompress(ByteView payload) const override {
    std::vector<float> out;
    decompress_into(payload, out);
    return out;
  }

  void decompress_into(ByteView payload,
                       std::vector<float>& out) const override {
    const std::size_t n = checked_count(payload, kProjectionMagic, "RandProj");
    wire::Reader r(wire::payload_body(payload));
    const std::uint64_t seed = r.u64();
    const std::uint64_t block = r.u64();
    if (block != kProjectionBlock) {
      throw PayloadError("RandProj: block size mismatch");
    }
    if (total_rows(n) * sizeof(float) != r.remaining()) {
      throw PayloadError("RandProj: projection data size mismatch");
    }
    out.assign(n, 0.0f);
    for (std::size_t begin = 0; begin < n; begin += kProjectionBlock) {
      const std::size_t len = std::min(kProjectionBlock, n - begin);
      const std::size_t m = projection_rows(len, ratio_);
      const std::uint64_t block_seed = mix64(seed ^ (begin + 1));
      const float inv_m = 1.0f / static_cast<float>(m);
      for (std::size_t j = 0; j < m; ++j) {
        const std::uint64_t row_seed = mix64(block_seed ^ j);
        const float y = r.f32();
        for (std::size_t i = 0; i < len; ++i) {
          const float sign = (mix64(row_seed ^ i) >> 63) ? -1.0f : 1.0f;
          out[begin + i] += sign * y * inv_m;
        }
      }
    }
  }

  void reset_stream(std::uint64_t stream) const noexcept override {
    seeds_.erase(stream);
  }

  GpuProfile gpu_profile() const noexcept override {
    GpuProfile p;
    p.stages = 2;  // blocked sign-GEMV, pack.
    p.flops_per_byte = 8.0;
    p.bandwidth_efficiency = 0.7;
    p.memory_passes = 2.0;
    return p;
  }

  std::size_t max_payload_bytes(std::size_t values) const noexcept override {
    return wire::kHeaderSize + 8 + 8 + total_rows(values) * sizeof(float);
  }

  void serialize_state(Bytes& out) const override { seeds_.serialize(out); }
  void deserialize_state(wire::Reader& reader) override {
    seeds_.deserialize(reader);
  }
  void reset_state() override { seeds_.reset(); }

 private:
  std::size_t total_rows(std::size_t n) const noexcept {
    std::size_t total = 0;
    for (std::size_t begin = 0; begin < n; begin += kProjectionBlock) {
      total += projection_rows(std::min(kProjectionBlock, n - begin), ratio_);
    }
    return total;
  }

  double ratio_;
  mutable SketchSeedState seeds_;
};

}  // namespace

std::unique_ptr<GradientCompressor> make_count_sketch(double ratio,
                                                      unsigned rows,
                                                      std::uint64_t seed) {
  return std::make_unique<CountSketchCompressor>(
      ratio, std::clamp(rows, 1u, 64u), seed);
}

std::unique_ptr<GradientCompressor> make_random_projection(double ratio,
                                                           std::uint64_t seed) {
  return std::make_unique<RandomProjectionCompressor>(ratio, seed);
}

}  // namespace compso::compress
