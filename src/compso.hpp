#pragma once
// Umbrella header: everything a downstream user of the COMPSO library
// needs. Individual module headers remain includable on their own for
// finer-grained builds.
//
//   #include "src/compso.hpp"
//
//   compso::tensor::Rng rng(42);
//   auto c = compso::compress::make_compso({});
//   auto payload = c->compress(gradient, rng);

#include "src/comm/communicator.hpp"
#include "src/comm/fault_injector.hpp"
#include "src/comm/membership.hpp"
#include "src/comm/network_model.hpp"
#include "src/comm/topology.hpp"
#include "src/compress/compressor.hpp"
#include "src/compress/error_feedback.hpp"
#include "src/compress/sketch.hpp"
#include "src/core/adaptive_schedule.hpp"
#include "src/core/bound_tuner.hpp"
#include "src/core/checkpoint.hpp"
#include "src/core/framework.hpp"
#include "src/core/ft_trainer.hpp"
#include "src/core/perf_sim.hpp"
#include "src/core/trainer.hpp"
#include "src/gpusim/device_model.hpp"
#include "src/nn/attention.hpp"
#include "src/nn/conv.hpp"
#include "src/nn/dataset.hpp"
#include "src/nn/model.hpp"
#include "src/nn/model_zoo.hpp"
#include "src/obs/json.hpp"
#include "src/obs/obs.hpp"
#include "src/optim/dist_kfac.hpp"
#include "src/optim/dist_sgd.hpp"
#include "src/optim/first_order.hpp"
#include "src/optim/lr_scheduler.hpp"
#include "src/perf/perf_model.hpp"
#include "src/quant/filter.hpp"
#include "src/quant/quantizer.hpp"
#include "src/tensor/stats.hpp"
#include "src/tensor/synthetic.hpp"
#include "src/tensor/tensor.hpp"
